//! Readiness polling for the event-loop engine — std-only, no new deps.
//!
//! The reactor needs one thing from the OS: "block until any registered
//! socket is readable/writable, and tell me which". On Linux that is
//! `epoll`; everywhere else on unix it is `poll(2)`. Neither is exposed
//! by std, so this module declares the handful of symbols directly with
//! `extern "C"` — they live in the C runtime std already links, so no
//! `libc` crate (or any other dependency) is required.
//!
//! Semantics are deliberately the lowest common denominator:
//!
//! * **level-triggered** readiness (a socket with unread bytes reports
//!   readable on every wait until drained) — the reactor never needs the
//!   edge-triggered "drain until `WouldBlock` or lose the wakeup" dance;
//! * one `u64` token per fd, echoed back in events;
//! * interest is replaced wholesale by [`Poller::modify`], not OR-ed.
//!
//! The poller also keeps a registration map so [`Poller::registered`]
//! can report the live fd count as a gauge (and so the portable
//! `poll(2)` backend can rebuild its pollfd array each wait).

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or closed/errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Write-only interest (used while a stuffed connection is paused).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

/// One readiness event: the registered token plus what fired.
///
/// Errors and hangups are folded into `readable`/`writable` — the
/// reactor discovers the actual condition from the subsequent
/// `read`/`write` returning `Ok(0)` or an error, which keeps the event
/// type trivial and the error handling in one place.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// Token supplied at registration.
    pub token: u64,
    /// Fd is readable, closed, or errored.
    pub readable: bool,
    /// Fd is writable or errored.
    pub writable: bool,
}

/// On Linux the kernel tracks token + interest inside epoll, so these
/// fields only feed the `poll(2)` fallback (and the gauge via the map's
/// size).
#[derive(Debug)]
#[cfg_attr(target_os = "linux", allow(dead_code))]
struct Registration {
    token: u64,
    interest: Interest,
}

/// A readiness poller over raw fds (epoll on Linux, `poll(2)` elsewhere).
#[derive(Debug)]
pub struct Poller {
    backend: backend::Backend,
    registrations: Mutex<HashMap<RawFd, Registration>>,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (Linux); infallible elsewhere.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: backend::Backend::new()?,
            registrations: Mutex::new(HashMap::new()),
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. the fd is already registered).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)?;
        self.registrations
            .lock()
            .expect("poller registrations poisoned")
            .insert(fd, Registration { token, interest });
        Ok(())
    }

    /// Replaces the interest set of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. the fd is not registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)?;
        self.registrations
            .lock()
            .expect("poller registrations poisoned")
            .insert(fd, Registration { token, interest });
        Ok(())
    }

    /// Removes an fd from the poller.
    ///
    /// # Errors
    ///
    /// Propagates the OS error; the local registration is dropped either
    /// way so the gauge cannot leak.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.registrations
            .lock()
            .expect("poller registrations poisoned")
            .remove(&fd);
        self.backend.deregister(fd)
    }

    /// Number of currently registered fds (the `registered_fds` gauge).
    pub fn registered(&self) -> usize {
        self.registrations
            .lock()
            .expect("poller registrations poisoned")
            .len()
    }

    /// Blocks until at least one event fires or `timeout` elapses
    /// (`None` blocks indefinitely). Events are appended to `events`
    /// (which is cleared first). Returns the number of events delivered;
    /// `0` means the wait timed out.
    ///
    /// # Errors
    ///
    /// Propagates the OS error. `EINTR` is retried internally.
    pub fn wait(
        &self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round *up* so a 100 µs timeout does not become a hot spin.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            match self.backend.wait(events, timeout_ms, &self.registrations) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other.map(|()| events.len()),
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    //! epoll via a thin `extern "C"` shim — the symbols live in the C
    //! runtime std links, so no crate dependency is introduced.

    use super::{Interest, PollEvent, Registration};
    use std::collections::HashMap;
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`. Packed on x86-64,
    /// where the kernel ABI leaves the u64 unaligned.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub struct Backend {
        epfd: RawFd,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: plain syscall wrapper, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demanded a non-null event for DEL;
            // passing one is harmless everywhere.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout_ms: i32,
            _registrations: &Mutex<HashMap<RawFd, Registration>>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: `buf` is a valid writable array of `buf.len()` events.
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let token = ev.data;
                out.push(PollEvent {
                    token,
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: we own `epfd` and close it exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! Portable `poll(2)` fallback for non-Linux unix. The pollfd array
    //! is rebuilt from the registration map on every wait — O(fds), fine
    //! for the connection counts a fallback platform sees.

    use super::{Interest, PollEvent, Registration};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_short, c_ulong};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub struct Backend;

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend)
        }

        pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Ok(())
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Ok(())
        }

        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            Ok(())
        }

        pub fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout_ms: i32,
            registrations: &Mutex<HashMap<RawFd, Registration>>,
        ) -> io::Result<()> {
            let snapshot: Vec<(RawFd, u64, Interest)> = registrations
                .lock()
                .expect("poller registrations poisoned")
                .iter()
                .map(|(fd, r)| (*fd, r.token, r.interest))
                .collect();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: `fds` is a valid array of `fds.len()` pollfds.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for (pfd, (_, token, _)) in fds.iter().zip(&snapshot) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *token,
                    readable: pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: pfd.revents & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn wait_times_out_with_no_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
        assert_eq!(poller.registered(), 0);
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let poller = Poller::new().expect("poller");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        poller
            .register(b.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        assert_eq!(poller.registered(), 1);

        let mut events = Vec::new();
        // Nothing written yet: no event.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        a.write_all(b"x").expect("write");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: the byte is still unread, so it fires again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);

        poller.deregister(b.as_raw_fd()).expect("deregister");
        assert_eq!(poller.registered(), 0);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn modify_switches_interest() {
        let poller = Poller::new().expect("poller");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        a.write_all(b"x").expect("write");
        poller
            .register(b.as_raw_fd(), 1, Interest::WRITE)
            .expect("register");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(200)))
            .expect("wait");
        // Write interest on an idle socket: writable fires, readable not
        // requested.
        assert_eq!(n, 1);
        assert!(events[0].writable);
        poller
            .modify(b.as_raw_fd(), 1, Interest::READ)
            .expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        assert!(events[0].readable);
    }
}
