//! The fixed worker pool draining the bounded queue.
//!
//! Sizing: `SIRO_THREADS` (via [`siro_synth::resolve_threads`]) unless the
//! config pins an explicit count — the same knob that sizes synthesis
//! fan-out, so one environment variable governs all CPU-bound
//! parallelism. Workers execute translation jobs through the shared
//! [`Engine`]; a panicking job is caught per-request and answered with an
//! `Internal` error, so one poisoned module cannot take a worker (or the
//! whole pool) down.

use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::Engine;
use crate::protocol::{ErrorCode, Request, Response};
use crate::queue::BoundedQueue;
use crate::reactor::Completions;
use crate::stats::Metrics;

/// Where a finished job's response goes. The threaded engine routes
/// through the connection writer's channel; the event engine pushes onto
/// the reactor's completion queue (which wakes the reactor so it can
/// write the frame from the event loop).
pub struct Reply(ReplyKind);

enum ReplyKind {
    Channel(mpsc::Sender<(u64, Response)>),
    Reactor {
        completions: std::sync::Arc<Completions>,
        conn: u64,
    },
}

impl Reply {
    /// A reply routed to a per-connection writer thread.
    pub fn channel(tx: mpsc::Sender<(u64, Response)>) -> Reply {
        Reply(ReplyKind::Channel(tx))
    }

    /// A reply routed back to the reactor for connection `conn`.
    pub(crate) fn reactor(completions: std::sync::Arc<Completions>, conn: u64) -> Reply {
        Reply(ReplyKind::Reactor { completions, conn })
    }

    /// Delivers the response. The connection may already be gone (client
    /// hung up mid-flight); delivery to a dead endpoint is a no-op.
    pub fn send(&self, id: u64, response: Response) {
        match &self.0 {
            ReplyKind::Channel(tx) => {
                let _ = tx.send((id, response));
            }
            ReplyKind::Reactor { completions, conn } => {
                completions.push(*conn, id, response);
            }
        }
    }
}

/// One unit of queued work: a decoded request plus the route that carries
/// its response back to the owning connection.
pub struct Job {
    /// Echo id from the request frame.
    pub id: u64,
    /// The decoded request.
    pub request: Request,
    /// Where the response goes.
    pub reply: Reply,
    /// When the connection enqueued the job (queue wait + execution are
    /// both part of the served latency).
    pub enqueued: Instant,
}

/// Handles to the running workers.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads draining `queue` through `engine`.
    pub fn spawn(
        workers: usize,
        queue: Arc<BoundedQueue<Job>>,
        engine: Arc<Engine>,
        metrics: Arc<Metrics>,
    ) -> Self {
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("siro-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &engine, &metrics))
                    .expect("spawning worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to exit (the queue must be closed first).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(queue: &BoundedQueue<Job>, engine: &Engine, metrics: &Metrics) {
    while let Some(job) = queue.pop() {
        let _req = siro_trace::span!("serve.request", "id {}", job.id);
        siro_trace::record_since("serve.queue_wait", job.enqueued, String::new);
        let response =
            match std::panic::catch_unwind(AssertUnwindSafe(|| engine.execute(&job.request))) {
                Ok(r) => r,
                Err(payload) => {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".into());
                    Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("worker panicked: {what}"),
                    }
                }
            };
        if matches!(&response, Response::Error { .. }) {
            metrics.on_error();
        } else {
            metrics.on_ok(job.enqueued.elapsed());
        }
        job.reply.send(job.id, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TranslateMode;
    use siro_ir::IrVersion;

    fn pool_fixture(workers: usize, cap: usize) -> (Arc<BoundedQueue<Job>>, WorkerPool) {
        let metrics = Arc::new(Metrics::default());
        let engine = Arc::new(Engine::new(Arc::clone(&metrics)));
        let queue = Arc::new(BoundedQueue::new(cap));
        let pool = WorkerPool::spawn(workers, Arc::clone(&queue), engine, metrics);
        (queue, pool)
    }

    #[test]
    fn pool_executes_jobs_and_drains_on_close() {
        let (queue, pool) = pool_fixture(2, 8);
        let (tx, rx) = mpsc::channel();
        for id in 0..5u64 {
            queue
                .try_push(Job {
                    id,
                    request: Request::Ping { delay_ms: 0 },
                    reply: Reply::channel(tx.clone()),
                    enqueued: Instant::now(),
                })
                .unwrap_or_else(|_| panic!("queue full"));
        }
        drop(tx);
        queue.close();
        pool.join();
        let mut ids: Vec<u64> = rx
            .iter()
            .map(|(id, r)| {
                assert_eq!(r, Response::Pong);
                id
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bad_module_yields_error_response_and_pool_survives() {
        let (queue, pool) = pool_fixture(1, 4);
        let (tx, rx) = mpsc::channel();
        let bad = Job {
            id: 1,
            request: Request::Translate {
                source: IrVersion::V13_0.into(),
                target: IrVersion::V3_6.into(),
                mode: TranslateMode::Reference,
                text: "garbage".into(),
            },
            reply: Reply::channel(tx.clone()),
            enqueued: Instant::now(),
        };
        let good = Job {
            id: 2,
            request: Request::Ping { delay_ms: 0 },
            reply: Reply::channel(tx.clone()),
            enqueued: Instant::now(),
        };
        queue.try_push(bad).unwrap_or_else(|_| panic!("push"));
        queue.try_push(good).unwrap_or_else(|_| panic!("push"));
        drop(tx);
        queue.close();
        pool.join();
        let responses: Vec<(u64, Response)> = rx.iter().collect();
        assert_eq!(responses.len(), 2);
        assert!(matches!(
            responses[0].1,
            Response::Error {
                code: ErrorCode::Parse,
                ..
            }
        ));
        assert_eq!(responses[1].1, Response::Pong);
    }
}
