//! End-to-end warm start: a server booted with `--store` on a populated
//! directory must answer its first TRANSLATE byte-identically to the cold
//! run, with the synthesis funnel untouched — zero coalescer syntheses
//! and zero `synth.*` spans.
//!
//! The translator cache, the active store, and the trace collector are
//! process-global, so both phases run inside one `#[test]`.

use std::sync::Arc;
use std::time::Duration;

use siro_ir::IrVersion;
use siro_serve::{stats_value, Client, ServeConfig, TranslateMode};
use siro_synth::{
    reset_store_stats, set_active_store, store_stats, StoreConfig, TranslatorCache, TranslatorStore,
};

const TIMEOUT: Duration = Duration::from_secs(30);

fn corpus_module_text(src: IrVersion, tgt: IrVersion) -> String {
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.usable_for_pair(src, tgt))
        .expect("a usable corpus case");
    siro_ir::write::write_module(&case.build(src))
}

#[test]
fn warm_started_server_serves_identically_without_synthesizing() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let dir = std::env::temp_dir().join(format!("siro-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let text = corpus_module_text(src, tgt);

    // ---- Phase 1: cold server with the store attached; the first
    // translate cold-synthesizes and writes the entry back. -------------
    let store = Arc::new(TranslatorStore::open(StoreConfig::at(&dir)).expect("open store"));
    set_active_store(Some(store));
    reset_store_stats();
    TranslatorCache::reset();
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("cold server binds");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect cold");
    let cold = client
        .translate(src, tgt, TranslateMode::Synthesized, text.clone())
        .expect("cold translation");
    assert!(!cold.cache_hit, "phase 1 must be the cold synthesis");
    drop(client);
    handle.shutdown();
    assert_eq!(store_stats().writes, 1, "cold synthesis must persist");
    set_active_store(None);

    // ---- Phase 2: fresh process state, boot from the store. ------------
    TranslatorCache::reset();
    reset_store_stats();
    siro_trace::set_enabled(true);
    siro_trace::reset();
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("warm server binds");
    assert!(
        store_stats().warm_loaded >= 1,
        "boot must pre-load the stored translator"
    );

    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect warm");
    let warm = client
        .translate(src, tgt, TranslateMode::Synthesized, text)
        .expect("warm translation");
    assert!(warm.cache_hit, "the first warm request must be a cache hit");
    assert_eq!(
        warm.text, cold.text,
        "warm-start output differs from the cold output"
    );

    // The synthesis funnel never moved: no coalescer synthesis, no
    // synthesis spans — the store answered everything.
    let stats = client.stats().expect("stats page");
    assert_eq!(stats_value(&stats, "pairs_synthesized"), Some(0));
    assert_eq!(stats_value(&stats, "store_attached"), Some(1));
    assert!(stats_value(&stats, "store_warm_loaded").unwrap_or(0) >= 1);
    let spans = siro_trace::snapshot();
    let synth_spans: Vec<_> = spans
        .spans
        .iter()
        .filter(|s| s.name.starts_with("synth."))
        .collect();
    assert!(
        synth_spans.is_empty(),
        "warm start ran synthesis stages: {:?}",
        synth_spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    drop(client);
    handle.shutdown();
    siro_trace::set_enabled(false);
    set_active_store(None);
    TranslatorCache::reset();
    let _ = std::fs::remove_dir_all(&dir);
}
