//! End-to-end tests over a real loopback socket: byte-identical
//! translation, request coalescing, backpressure, pipelining, error
//! mapping, and graceful shutdown.
//!
//! Each test starts its own server on an ephemeral port, so the tests are
//! independent and can run concurrently. The `TranslatorCache` is
//! process-global, so tests that assert cold-pair behaviour each reserve
//! a version pair no other test in this binary touches.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use siro_core::{ReferenceTranslator, Skeleton};
use siro_ir::{parse, write, IrVersion};
use siro_serve::{
    metrics_value, stats_value, AdmissionConfig, Client, ClientError, EngineMode, ErrorCode,
    Response, ServeConfig, TranslateMode,
};

const TIMEOUT: Duration = Duration::from_secs(30);

/// The `TranslatorCache` counters are process-global, and several tests
/// below assert *exact* deltas on them — so the tests in this binary run
/// one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn start_server(threads: usize, queue: usize) -> siro_serve::ServerHandle {
    siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(threads),
        queue_capacity: queue,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("server must bind an ephemeral port")
}

fn corpus_module_text(version: IrVersion, target: IrVersion, index: usize) -> String {
    let usable: Vec<_> = siro_testcases::full_corpus()
        .into_iter()
        .filter(|c| c.usable_for_pair(version, target))
        .collect();
    write::write_module(&usable[index % usable.len()].build(version))
}

/// Acceptance: a module translated over the socket is byte-identical to
/// the same translation done in-process, for two version pairs and both
/// translator modes.
#[test]
fn served_translation_is_byte_identical_to_in_process() {
    let _serial = serial();
    let handle = start_server(2, 32);
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let pairs = [
        (IrVersion::V13_0, IrVersion::V3_6),
        (IrVersion::V12_0, IrVersion::V3_0),
    ];
    for (src, tgt) in pairs {
        for index in 0..3 {
            let text = corpus_module_text(src, tgt, index);
            let module = parse::parse_module(&text).expect("local parse");

            // Reference mode vs in-process reference translation.
            let served = client
                .translate(src, tgt, TranslateMode::Reference, text.clone())
                .expect("served reference translation");
            let local = Skeleton::new(tgt)
                .translate_module(&module, &ReferenceTranslator)
                .expect("local reference translation");
            assert_eq!(
                served.text,
                write::write_module(&local),
                "reference {src} -> {tgt} case {index} must match byte-for-byte"
            );

            // Synthesized mode vs in-process synthesized translation
            // (sharing the same process-wide TranslatorCache).
            let served = client
                .translate(src, tgt, TranslateMode::Synthesized, text.clone())
                .expect("served synthesized translation");
            let outcome = siro_bench_corpus_outcome(src, tgt);
            let local = Skeleton::new(tgt)
                .translate_module(&module, &outcome.translator)
                .expect("local synthesized translation");
            assert_eq!(
                served.text,
                write::write_module(&local),
                "synthesized {src} -> {tgt} case {index} must match byte-for-byte"
            );
        }
    }
    handle.shutdown();
}

/// The same corpus + config the server uses, so the cache key matches and
/// the in-process comparison exercises the *same* translator.
fn siro_bench_corpus_outcome(src: IrVersion, tgt: IrVersion) -> Arc<siro_synth::SynthesisOutcome> {
    let tests: Vec<siro_synth::OracleTest> = siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| siro_synth::OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect();
    siro_synth::TranslatorCache::get_or_synthesize(
        siro_synth::SynthesisConfig::new(src, tgt),
        &tests,
    )
    .expect("synthesis")
}

/// Acceptance: M concurrent cold requests for one pair → exactly one
/// synthesis, observable in the server's coalescing counters and the
/// cache counters on the STATS page.
#[test]
fn concurrent_cold_requests_coalesce_into_one_synthesis() {
    let _serial = serial();
    // Reserved pair: no other test in this binary synthesizes 14.0 -> 3.6.
    let (src, tgt) = (IrVersion::V14_0, IrVersion::V3_6);
    let handle = start_server(8, 64);
    let addr = handle.addr();
    let before = siro_synth::TranslatorCache::snapshot();

    let threads: Vec<_> = (0..8)
        .map(|index| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).expect("connect");
                let text = corpus_module_text(src, tgt, index);
                client
                    .translate(src, tgt, TranslateMode::Synthesized, text)
                    .expect("translation under stampede")
            })
        })
        .collect();
    let results: Vec<_> = threads
        .into_iter()
        .map(|t| t.join().expect("join"))
        .collect();
    assert_eq!(results.len(), 8);

    // Exactly one synthesis ran for the pair…
    let (syntheses, coalesced) = handle.engine().coalescer().pair_counters(src, tgt);
    assert_eq!(syntheses, 1, "stampede must synthesize exactly once");
    assert_eq!(coalesced, 7, "the other seven requests must coalesce");
    // …and the process-wide cache counters agree (exactly one new miss
    // for this key; hits grew by at least the seven coalesced requests).
    let after = siro_synth::TranslatorCache::snapshot();
    assert_eq!(
        after.misses - before.misses,
        1,
        "cache must record one miss for the cold pair"
    );
    assert!(after.hits >= before.hits + 7);

    // STATS reflects the same numbers.
    let mut client = Client::connect(addr, TIMEOUT).expect("connect");
    let page = client.stats().expect("stats");
    assert_eq!(stats_value(&page, "pairs_synthesized"), Some(1));
    assert_eq!(stats_value(&page, "coalesced_waiters"), Some(7));
    handle.shutdown();
}

/// Acceptance: a saturated bounded queue answers `Busy` instead of
/// blocking. One worker is pinned by a slow ping; the queue (capacity 1)
/// is filled by a second; the next request must be rejected immediately.
#[test]
fn saturated_queue_answers_busy_without_blocking() {
    let _serial = serial();
    let handle = start_server(1, 1);
    let addr = handle.addr();

    let mut filler = Client::connect(addr, TIMEOUT).expect("connect filler");
    // Request 1 occupies the single worker for ~1.5 s.
    filler.ping_nowait(1500).expect("send slow ping");
    // Request 2 sits in the single queue slot.
    std::thread::sleep(Duration::from_millis(200));
    filler.ping_nowait(1500).expect("send queued ping");
    std::thread::sleep(Duration::from_millis(200));

    // Request 3 must bounce with Busy, and must do so immediately — far
    // sooner than the ~2.6 s the worker needs to drain the backlog.
    let mut probe = Client::connect(addr, TIMEOUT).expect("connect probe");
    let t0 = std::time::Instant::now();
    let err = probe.ping(0).expect_err("queue is saturated");
    let elapsed = t0.elapsed();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other}"),
    }
    assert!(
        elapsed < Duration::from_millis(1000),
        "busy rejection must not block behind the queue (took {elapsed:?})"
    );

    // The filler's two slow pings still complete (backpressure rejected
    // new work, it did not drop accepted work).
    let (_, first) = filler.recv_response().expect("first pong");
    let (_, second) = filler.recv_response().expect("second pong");
    assert_eq!(first, Response::Pong);
    assert_eq!(second, Response::Pong);

    let page = probe.stats().expect("stats");
    assert_eq!(stats_value(&page, "requests_busy"), Some(1));
    handle.shutdown();
}

/// Pipelined batches on one connection come back complete and in order.
#[test]
fn pipelined_batch_preserves_request_order() {
    let _serial = serial();
    let handle = start_server(4, 64);
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_0);
    let batch: Vec<_> = (0..12)
        .map(|i| {
            (
                src,
                tgt,
                TranslateMode::Reference,
                corpus_module_text(src, tgt, i),
            )
        })
        .collect();
    let results = client.translate_batch(&batch).expect("batch");
    assert_eq!(results.len(), 12);
    for (i, r) in results.iter().enumerate() {
        let out = r.as_ref().expect("each batched translation succeeds");
        let module = parse::parse_module(&batch[i].3).expect("parse");
        let local = Skeleton::new(tgt)
            .translate_module(&module, &ReferenceTranslator)
            .expect("local");
        assert_eq!(out.text, write::write_module(&local), "slot {i}");
    }
    handle.shutdown();
}

/// Server-side failures arrive as structured codes, and the connection
/// (and server) survive them.
#[test]
fn errors_are_structured_and_nonfatal() {
    let _serial = serial();
    let handle = start_server(2, 16);
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    let err = client
        .translate(
            IrVersion::V13_0,
            IrVersion::V3_6,
            TranslateMode::Reference,
            "not ir at all",
        )
        .expect_err("malformed module must fail");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Parse),
        other => panic!("expected Parse error, got {other}"),
    }

    // Same connection keeps working afterwards.
    let text = corpus_module_text(IrVersion::V13_0, IrVersion::V3_6, 0);
    client
        .translate(
            IrVersion::V13_0,
            IrVersion::V3_6,
            TranslateMode::Reference,
            text,
        )
        .expect("connection survives a request-level error");
    handle.shutdown();
}

/// A wire Shutdown drains in-flight work before the server exits: a slow
/// request accepted before the shutdown still completes.
#[test]
fn wire_shutdown_drains_in_flight_requests() {
    let _serial = serial();
    let handle = start_server(1, 8);
    let addr = handle.addr();

    let mut slow = Client::connect(addr, TIMEOUT).expect("connect slow");
    slow.ping_nowait(800).expect("send slow ping");
    std::thread::sleep(Duration::from_millis(100));

    let mut admin = Client::connect(addr, TIMEOUT).expect("connect admin");
    admin.shutdown().expect("shutdown ack");

    // The in-flight slow ping must still be answered.
    let (_, response) = slow.recv_response().expect("drained response");
    assert_eq!(response, Response::Pong);

    handle.wait();

    // And the port is actually closed afterwards.
    assert!(
        Client::connect(addr, Duration::from_millis(300)).is_err(),
        "server must stop accepting after shutdown"
    );
}

fn start_engine(engine: EngineMode, threads: usize, queue: usize) -> siro_serve::ServerHandle {
    siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(threads),
        queue_capacity: queue,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(10),
        engine,
        ..ServeConfig::default()
    })
    .expect("server must bind an ephemeral port")
}

/// Acceptance: the event-loop engine and the legacy threaded engine
/// answer TRANSLATE byte-identically — same pair, same module, both
/// translator modes, compared response-for-response.
#[test]
fn event_and_threaded_engines_answer_byte_identically() {
    let _serial = serial();
    let event = start_engine(EngineMode::Event, 2, 32);
    let threaded = start_engine(EngineMode::Threaded, 2, 32);
    assert_eq!(event.engine_mode(), EngineMode::Event);
    assert_eq!(threaded.engine_mode(), EngineMode::Threaded);

    let mut on_event = Client::connect(event.addr(), TIMEOUT).expect("connect event");
    let mut on_threaded = Client::connect(threaded.addr(), TIMEOUT).expect("connect threaded");
    // Reserved pairs: no other test in this binary synthesizes
    // 11.0 -> 3.0 or 9.0 -> 3.6.
    let pairs = [
        (IrVersion::V11_0, IrVersion::V3_0),
        (IrVersion::V9_0, IrVersion::V3_6),
    ];
    for (src, tgt) in pairs {
        for mode in [TranslateMode::Reference, TranslateMode::Synthesized] {
            for index in 0..3 {
                let text = corpus_module_text(src, tgt, index);
                let a = on_event
                    .translate(src, tgt, mode, text.clone())
                    .expect("event engine translation");
                let b = on_threaded
                    .translate(src, tgt, mode, text)
                    .expect("threaded engine translation");
                assert_eq!(
                    a.text, b.text,
                    "{mode:?} {src} -> {tgt} case {index}: engines must agree byte-for-byte"
                );
            }
        }
    }
    event.shutdown();
    threaded.shutdown();
}

/// Acceptance: the event engine holds more concurrent open connections
/// than it has worker threads — impossible under the old
/// two-threads-per-connection model without spawning, here served by one
/// reactor thread.
#[test]
fn event_engine_holds_more_connections_than_workers() {
    let _serial = serial();
    let workers = 2;
    let handle = start_engine(EngineMode::Event, workers, 64);
    let addr = handle.addr();
    let total = workers * 8 + 4;

    // Open all connections first, then round-trip a ping on each while
    // every other connection stays open.
    let mut clients: Vec<Client> = (0..total)
        .map(|i| Client::connect(addr, TIMEOUT).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        client.ping(0).unwrap_or_else(|e| panic!("ping {i}: {e}"));
    }

    let open = handle
        .reactor_stats()
        .open_connections
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        open, total as u64,
        "all {total} connections must be open at once"
    );
    assert!(
        open > handle.workers() as u64,
        "open connections ({open}) must exceed the worker count ({})",
        handle.workers()
    );
    drop(clients);
    handle.shutdown();
}

/// Admission control: a peer that exceeds its per-client budget gets a
/// structured `Throttled` with a positive retry-after, the connection
/// survives, and the request is counted — while control requests (STATS)
/// stay exempt.
#[test]
fn over_budget_peer_is_throttled_with_retry_after() {
    let _serial = serial();
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        queue_capacity: 16,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_secs(10),
        admission: AdmissionConfig {
            rate_per_sec: Some(1.0),
            burst: Some(1.0),
        },
        ..ServeConfig::default()
    })
    .expect("server must bind an ephemeral port");
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    // The bucket starts full: the first request is admitted.
    client.ping(0).expect("first request is within budget");
    // The second arrives immediately after and must be throttled.
    let err = client.ping(0).expect_err("budget is spent");
    match err {
        ClientError::Throttled {
            retry_after_ms,
            ref message,
        } => {
            assert!(
                (1..=60_000).contains(&retry_after_ms),
                "retry-after must be a sane positive backoff, got {retry_after_ms} ms"
            );
            assert!(
                message.contains("budget"),
                "message should explain the throttle: {message:?}"
            );
        }
        other => panic!("expected Throttled, got {other}"),
    }

    // STATS is a control request — exempt from admission — and reports
    // the throttle; the connection survived the rejection.
    let page = client.stats().expect("stats is exempt from admission");
    assert_eq!(stats_value(&page, "requests_throttled"), Some(1));
    handle.shutdown();
}

/// The METRICS endpoint serves a Prometheus-style page over the socket,
/// its counters move after a translate, and it always reports the
/// `siro-trace` enabled/disabled gauge so operators can tell traced runs
/// apart.
#[test]
fn metrics_over_the_socket_parse_and_move() {
    let _serial = serial();
    let handle = start_server(2, 16);
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");

    let before = client.metrics().expect("metrics page");
    let served_before = metrics_value(&before, "siro_requests_total").expect("requests sample");
    let translated_before =
        metrics_value(&before, "siro_translations_total").expect("translations sample");
    // The trace state gauge is always present, whatever its value.
    let trace_gauge = metrics_value(&before, "siro_trace_enabled").expect("trace gauge");
    assert!(trace_gauge <= 1, "gauge is 0 or 1, got {trace_gauge}");
    // Every sample carries a TYPE declaration (Prometheus exposition shape).
    for line in before.lines().filter(|l| !l.starts_with('#')) {
        let name = line.split(' ').next().unwrap();
        assert!(
            before.contains(&format!("# TYPE {name} ")),
            "sample `{line}` lacks a TYPE comment"
        );
    }

    let text = corpus_module_text(IrVersion::V13_0, IrVersion::V3_6, 0);
    client
        .translate(
            IrVersion::V13_0,
            IrVersion::V3_6,
            TranslateMode::Reference,
            text,
        )
        .expect("translate");

    let after = client.metrics().expect("metrics page again");
    let served_after = metrics_value(&after, "siro_requests_total").expect("requests sample");
    let translated_after =
        metrics_value(&after, "siro_translations_total").expect("translations sample");
    // The translate plus the first metrics fetch both count as requests.
    assert!(
        served_after >= served_before + 2,
        "requests_total must move: {served_before} -> {served_after}"
    );
    assert_eq!(
        translated_after,
        translated_before + 1,
        "exactly one translation ran"
    );
    // The in-process rendering is the same code path as the wire page.
    let inproc = handle.metrics_page();
    assert!(metrics_value(&inproc, "siro_requests_total").is_some());
    handle.shutdown();
}
