//! Scenario II of the paper (Fig. 1): a fuzzer's PoCs must still crash
//! after the target's IR is translated across versions, and IR-level
//! instrumentation must keep working on the translated module.
//!
//! ```sh
//! cargo run --example fuzz_reproduction
//! ```

use siro::core::{ReferenceTranslator, Skeleton};
use siro::fuzz::{build_project, coverage, magma_projects, poc_reproduces, Scale};
use siro::ir::IrVersion;

fn main() {
    let project = magma_projects(Scale(0.01))
        .into_iter()
        .find(|p| p.name == "libpng")
        .unwrap();
    let (module, pocs) = build_project(&project, IrVersion::V12_0);
    println!(
        "{}: {} CVEs, {} PoCs, {} instructions (IR {})",
        project.name,
        project.cves.len(),
        pocs.len(),
        module.inst_count(),
        module.version
    );

    // Translate down to the fuzzer's IR version.
    let translated = Skeleton::new(IrVersion::V3_6)
        .translate_module(&module, &ReferenceTranslator)
        .expect("translate");

    // Reproduce every PoC on the translated module.
    let mut ok = 0;
    for poc in &pocs {
        if poc_reproduces(&translated, poc) {
            ok += 1;
        }
    }
    println!(
        "PoCs reproduced after 12.0 -> 3.6 translation: {ok}/{}",
        pocs.len()
    );

    // Grey-box-style coverage instrumentation on the *translated* IR.
    let (instrumented, probes) = coverage::instrument_checked(&translated).expect("instrument");
    println!("inserted {probes} coverage probes into the translated module");
    let cov_crash = coverage::covered_blocks(&instrumented, &pocs[0].bytes);
    let cov_benign = coverage::covered_blocks(&instrumented, &[0u8; 16]);
    println!(
        "block coverage: crashing input {} blocks, benign input {} blocks",
        cov_crash.len(),
        cov_benign.len()
    );

    // Corpus minimisation, the classic fuzzing loop ingredient.
    let corpus: Vec<Vec<u8>> = pocs.iter().map(|p| p.bytes.to_vec()).collect();
    let kept = coverage::minimise_corpus(&instrumented, &corpus);
    println!(
        "coverage-guided corpus minimisation kept {} of {} inputs",
        kept.len(),
        corpus.len()
    );
}
