//! Serving demo: boot the `siro-serve` translation daemon in-process,
//! drive it over a real loopback socket, and read its STATS page.
//!
//! ```sh
//! cargo run --example serve_demo
//! ```

use std::time::Duration;

use siro::ir::{write, IrVersion};
use siro::serve::{Client, ServeConfig, TranslateMode};

fn main() {
    // 1. Boot the daemon on an ephemeral loopback port (same code path as
    //    `siro serve`, minus the fixed address).
    let handle = siro::serve::start(ServeConfig::default()).expect("bind loopback server");
    println!(
        "daemon on {} ({} workers, queue capacity {})",
        handle.addr(),
        handle.workers(),
        handle.queue_capacity()
    );

    // 2. A client ships a textual 13.0 module and asks for 3.6 back —
    //    first through the reference translator, then through a
    //    corpus-synthesized one (the daemon synthesizes on first use and
    //    caches the result process-wide).
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let case = siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .next()
        .expect("corpus case");
    let text = write::write_module(&case.build(src));

    let mut client = Client::connect(handle.addr(), Duration::from_secs(30)).expect("connect");
    for mode in [TranslateMode::Reference, TranslateMode::Synthesized] {
        let out = client
            .translate(src, tgt, mode, text.clone())
            .expect("served translation");
        println!(
            "\n--- {src} -> {tgt} ({mode:?}, cache {}) in {:.3} ms ---\n{}",
            if out.cache_hit { "hit" } else { "miss" },
            out.timings.total as f64 / 1e6,
            out.text
        );
    }

    // 3. The STATS page: request counts, queue depth, latency quantiles,
    //    cache and coalescing counters.
    println!("--- STATS ---\n{}", client.stats().expect("stats"));

    // 4. Graceful shutdown drains in-flight work before returning.
    handle.shutdown();
    println!("daemon drained and stopped");
}
