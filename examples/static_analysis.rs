//! Scenario I of the paper (Fig. 1): a static bug detector built on IR 3.6
//! cannot read IR 12.0 programs — unless a Siro translator bridges the gap.
//!
//! This example compiles one synthetic project with the high-version
//! frontend, translates it down with the reference translator, runs the
//! Pinpoint-style detectors on both settings, and prints the report diff.
//!
//! ```sh
//! cargo run --example static_analysis
//! ```

use siro::analysis::{analyze_module, BugKind, ReportDiff};
use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::IrVersion;
use siro::workloads::{compile_project, table4_projects, Frontend};

fn main() {
    let spec = table4_projects()
        .into_iter()
        .find(|p| p.name == "tmux")
        .unwrap();
    println!(
        "project: {} (synthetic stand-in with the paper's bug census)",
        spec.name
    );

    // The translating setting: high-version IR, downgraded by Siro.
    let high = compile_project(&spec, Frontend::High, IrVersion::V12_0);
    println!(
        "compiled with the 12.0 frontend: {} functions, {} instructions",
        high.funcs.len(),
        high.inst_count()
    );
    let translated = Skeleton::new(IrVersion::V3_6)
        .translate_module(&high, &ReferenceTranslator)
        .expect("translate");
    let translating_reports = analyze_module(&translated);

    // The compiling setting: the old frontend directly.
    let low = compile_project(&spec, Frontend::Low, IrVersion::V3_6);
    let compiling_reports = analyze_module(&low);

    println!(
        "\nreports: translating setting {}, compiling setting {}",
        translating_reports.len(),
        compiling_reports.len()
    );
    let diff = ReportDiff::compare(&translating_reports, &compiling_reports);
    println!(
        "diff: {} shared, {} new (translating only), {} missing (compiling only)",
        diff.shared.len(),
        diff.new.len(),
        diff.missing.len()
    );
    for kind in BugKind::ALL {
        let (n, m, s) = diff.counts_for(kind);
        println!("  {kind}: new {n:>2}  miss {m:>2}  shared {s:>3}");
    }

    println!("\nexample `new` reports (surfaced only after translation):");
    for r in diff.new.iter().take(3) {
        let sink = r.sink();
        println!(
            "  [{}] {} at {} - {}",
            r.kind, sink.func, sink.label, sink.desc
        );
    }
    println!("\nexample `missing` reports (only the old frontend's IR shape shows them):");
    for r in diff.missing.iter().take(3) {
        let sink = r.sink();
        println!(
            "  [{}] {} at {} - {}",
            r.kind, sink.func, sink.label, sink.desc
        );
    }
    println!(
        "\noverlap accuracy for this project: {:.1}%",
        diff.shared.len() as f64 / (diff.shared.len() + diff.new.len() + diff.missing.len()) as f64
            * 100.0
    );
}
