//! The paper's deployment story: the Linux kernel only builds with recent
//! compilers, so its IR is obtained at 14.0/15.0, translated down to 3.6 by
//! Siro, and scanned by a similarity-based bug detector mining known
//! security patches.
//!
//! ```sh
//! cargo run --example kernel_bug_hunt
//! ```

use siro::core::{InstTranslator, ReferenceTranslator};
use siro::ir::IrVersion;
use siro::kernel::{kernel_builds, patch_database, run_campaign, BugStatus};

fn main() {
    println!("patch database ({} root causes):", patch_database().len());
    for p in patch_database() {
        println!(
            "  {}: {} / {} ({:?})",
            p.id, p.acquire_fn, p.release_fn, p.rule
        );
    }
    for b in kernel_builds() {
        println!(
            "kernel build {}: requires compiler {}, {} drivers",
            b.release, b.compiler, b.drivers
        );
    }

    let campaign = run_campaign(
        &|_| -> Box<dyn InstTranslator> { Box::new(ReferenceTranslator) },
        IrVersion::V3_6,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    println!();
    for (release, compiler, bugs) in &campaign.per_release {
        println!(
            "{release} ({compiler} -> 3.6): {} previously unknown bugs",
            bugs.len()
        );
        for bug in bugs.iter().take(4) {
            println!(
                "  [{}] {} at {} ({:?})",
                bug.patch_id, bug.func, bug.sink, bug.status
            );
        }
        if bugs.len() > 4 {
            println!("  ... and {} more", bugs.len() - 4);
        }
    }
    let merged = campaign.merged();
    println!(
        "\ntotal: {} bugs, {} fixed and merged, {} confirmed (paper: 80 / 56)",
        campaign.total_bugs(),
        merged,
        campaign.total_bugs() - merged
    );
    let _ = BugStatus::FixedAndMerged;
}
