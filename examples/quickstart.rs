//! Quickstart: build a program in IR 13.0, synthesize a 13.0 -> 3.6
//! translator from the test-case corpus, translate, and run both sides.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use siro::core::Skeleton;
use siro::ir::{interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion, Module, ValueRef};
use siro::synth::{OracleTest, Synthesizer};

fn main() {
    // 1. A program that only a "new" compiler can produce: IR version 13.0.
    let mut module = Module::new("quickstart", IrVersion::V13_0);
    let i32t = module.types.i32();
    let main_fn = FuncBuilder::define(&mut module, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut module, main_fn);
    let entry = b.add_block("entry");
    let then_b = b.add_block("then");
    let else_b = b.add_block("else");
    b.position_at_end(entry);
    let x = b.mul(ValueRef::const_int(i32t, 6), ValueRef::const_int(i32t, 7));
    let c = b.icmp(IntPredicate::Sgt, x, ValueRef::const_int(i32t, 40));
    b.cond_br(c, then_b, else_b);
    b.position_at_end(then_b);
    b.ret(Some(x));
    b.position_at_end(else_b);
    b.ret(Some(ValueRef::const_int(i32t, 0)));

    println!("--- source module (version {}) ---", module.version);
    println!("{}", siro::ir::write::write_module(&module));

    // 2. Synthesize the 13.0 -> 3.6 instruction translators from the
    //    oracle-carrying corpus (this is Alg. 2 of the paper, end to end).
    let tests: Vec<OracleTest> =
        siro::testcases::corpus_for_pair(IrVersion::V13_0, IrVersion::V3_6)
            .into_iter()
            .map(|c| OracleTest {
                name: c.name.to_string(),
                module: c.build(IrVersion::V13_0),
                oracle: c.oracle,
            })
            .collect();
    println!(
        "synthesizing a 13.0 -> 3.6 translator from {} test cases ...",
        tests.len()
    );
    let outcome = Synthesizer::for_pair(IrVersion::V13_0, IrVersion::V3_6)
        .synthesize(&tests)
        .expect("synthesis");
    println!(
        "done in {:.2}s ({} per-test translators validated)",
        outcome.report.timings.total().as_secs_f64(),
        outcome.report.assignments_validated
    );

    // 3. Translate and run both sides.
    let translated = Skeleton::new(IrVersion::V3_6)
        .translate_module(&module, &outcome.translator)
        .expect("translate");
    verify::verify_module(&translated).expect("verify");
    println!("--- translated module (version {}) ---", translated.version);
    println!("{}", siro::ir::write::write_module(&translated));

    let before = Machine::new(&module).run_main().unwrap().return_int();
    let after = Machine::new(&translated).run_main().unwrap().return_int();
    println!("source returns     {before:?}");
    println!("translated returns {after:?}");
    assert_eq!(before, after);
    println!("behaviour preserved across the version gap.");
}
