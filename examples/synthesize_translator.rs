//! Runs the full synthesis pipeline for one version pair and inspects what
//! came out: the refined candidate counts, the generated translator source
//! (Fig. 4 style), and the corpus feedback (which tests pruned nothing).
//!
//! ```sh
//! cargo run --example synthesize_translator [SRC TGT]   # default 12.0 3.6
//! ```

use siro::ir::IrVersion;
use siro::synth::{OracleTest, Synthesizer};

fn parse_version(s: &str) -> Option<IrVersion> {
    let (maj, min) = s.split_once('.')?;
    Some(IrVersion::new(maj.parse().ok()?, min.parse().ok()?))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let src = args
        .get(1)
        .and_then(|s| parse_version(s))
        .unwrap_or(IrVersion::V12_0);
    let tgt = args
        .get(2)
        .and_then(|s| parse_version(s))
        .unwrap_or(IrVersion::V3_6);

    let tests: Vec<OracleTest> = siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect();
    println!("pair {src} -> {tgt}: {} usable test cases", tests.len());
    println!(
        "common instructions: {}, new instructions: {}",
        src.common_instructions(tgt).len(),
        src.new_instructions_vs(tgt).len()
    );

    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .expect("synthesis failed");
    let r = &outcome.report;
    println!(
        "\nsynthesis: {:.2}s total, {} per-test translators validated",
        r.timings.total().as_secs_f64(),
        r.assignments_validated
    );
    println!(
        "candidates: {} LOC generated, final translator {} LOC",
        r.candidate_loc, r.translator_loc
    );

    println!("\nkinds with sub-kind predicates or multiple equivalent candidates:");
    for (kind, refined) in &r.refined_counts {
        if *refined > 1 {
            println!("  {kind}: {refined} refined candidates");
        }
    }

    let redundant = r.redundant_tests();
    if redundant.is_empty() {
        println!("\nevery test case pruned candidates (no redundant tests).");
    } else {
        println!("\ntest cases that pruned nothing (candidates for removal):");
        for t in redundant {
            println!("  {t}");
        }
    }

    println!("\n--- generated translator source (excerpt) ---");
    for line in outcome.rendered.lines().take(60) {
        println!("{line}");
    }
    println!("... ({} lines total)", outcome.rendered.lines().count());
}
