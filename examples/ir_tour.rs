//! A tour of the IR substrate itself: version-flavoured serialization, the
//! parser, the verifier's version gating, and the interpreter.
//!
//! ```sh
//! cargo run --example ir_tour
//! ```

use siro::ir::{interp::Machine, parse, verify, write, FuncBuilder, IrVersion, Module, ValueRef};

fn sample(version: IrVersion) -> Module {
    let mut m = Module::new("tour", version);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let slot = b.alloca(i32t);
    b.store(ValueRef::const_int(i32t, 13), slot);
    let v = b.load(i32t, slot);
    let w = b.add(v, ValueRef::const_int(i32t, 29));
    b.ret(Some(w));
    m
}

fn main() {
    // One in-memory program, three textual dialects (the paper's "text
    // incompatibility").
    for version in [IrVersion::V3_6, IrVersion::V13_0, IrVersion::V15_0] {
        let m = sample(version);
        println!("=== serialized at IR {version} ===");
        let text = write::write_module(&m);
        println!("{text}");
        // And back through the version-aware reader.
        let parsed = parse::parse_module(&text).expect("parse");
        let result = Machine::new(&parsed).run_main().unwrap().return_int();
        println!("parsed + interpreted: main() = {result:?}\n");
    }

    // The verifier gates instruction sets per version (the paper's
    // "semantic incompatibility").
    let mut old = Module::new("gated", IrVersion::V3_6);
    let i32t = old.types.i32();
    let f = FuncBuilder::define(&mut old, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut old, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let frozen = b.freeze(ValueRef::const_int(i32t, 1)); // freeze is 10.0+
    b.ret(Some(frozen));
    let err = verify::verify_module(&old).unwrap_err();
    println!("verifier rejects freeze in a 3.6 module:\n  {err}\n");

    // Instruction-set arithmetic behind Tab. 3.
    for (src, tgt) in [
        (IrVersion::V12_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V3_0),
        (IrVersion::V5_0, IrVersion::V4_0),
    ] {
        println!(
            "{src} -> {tgt}: {} common instructions, {} new ({:?} ...)",
            src.common_instructions(tgt).len(),
            src.new_instructions_vs(tgt).len(),
            src.new_instructions_vs(tgt)
                .iter()
                .take(3)
                .map(|o| o.name())
                .collect::<Vec<_>>()
        );
    }
}
