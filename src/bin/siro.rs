//! The `siro` command-line tool: translate textual IR between versions,
//! run programs, synthesize translators, inspect the version catalog, and
//! run or talk to the `siro-serve` translation daemon.
//!
//! ```text
//! siro versions
//! siro run program.sir
//! siro translate --to 3.6 program.sir [-o out.sir] [--synthesized]
//! siro translate --to wir2.0 program.sir        # cross-dialect (anchor-bridged)
//! siro translate --remote 127.0.0.1:4799 --to 3.6 program.sir
//! siro synthesize --from 13.0 --to 3.6 [--emit-code]
//! siro difftest --pairs 13.0:3.6,17.0:12.0 --budget 60
//! siro opt program.sir [-o out.sir]
//! siro serve [--addr 127.0.0.1:4799] [--threads N] [--queue N] [--store DIR]
//!           [--engine event|threaded] [--admission-rps N] [--admission-burst N]
//! siro loadgen [--remote 127.0.0.1:4799] [--rates 1000,2000] [--connections N]
//! siro route plan --from 13.0 --to 3.6 [--store DIR] [--dialects]
//! siro route matrix [--store DIR] [--dialects]
//! siro store warm --dir DIR [--pairs 13.0:3.6,17.0:12.0]
//! siro store ls --dir DIR
//! siro store gc --dir DIR --max-bytes N
//! siro store verify --dir DIR
//! siro stats --remote 127.0.0.1:4799
//! siro metrics --remote 127.0.0.1:4799
//! siro shutdown --remote 127.0.0.1:4799
//! siro trace-report [trace.json]
//! ```
//!
//! With `SIRO_TRACE=1`, `synthesize` and `serve` write a Chrome
//! `trace_event` JSON file on exit (`SIRO_TRACE_FILE` overrides the
//! `siro_trace.json` default) which `siro trace-report` aggregates and
//! Perfetto / `chrome://tracing` load directly — see
//! `docs/OBSERVABILITY.md`.

use std::process::ExitCode;
use std::time::Duration;

use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::{interp::Machine, parse, verify, write, IrVersion, Module};
use siro::serve::{Client, EngineMode, ServeConfig, TranslateMode};
use siro::synth::{OracleTest, Synthesizer};

/// Default I/O timeout for the remote-client commands. Generous because a
/// cold synthesized pair blocks the response on a full synthesis.
const DEFAULT_REMOTE_TIMEOUT: Duration = Duration::from_secs(30);

/// Resolves the remote I/O timeout: `--timeout-ms` beats
/// `SIRO_CLIENT_TIMEOUT_MS`, which beats the 30 s default. The second
/// element says whether the choice was explicit — an explicit timeout
/// also caps each response wait, not just connect and socket I/O.
fn remote_timeout(args: &[String]) -> Result<(Duration, bool), String> {
    let spec = match flag_value(args, "--timeout-ms") {
        Some(ms) => Some((ms.to_string(), "--timeout-ms")),
        None => std::env::var("SIRO_CLIENT_TIMEOUT_MS")
            .ok()
            .map(|ms| (ms, "SIRO_CLIENT_TIMEOUT_MS")),
    };
    match spec {
        Some((ms, what)) => {
            let ms: u64 = ms
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("bad {what} `{ms}` (positive milliseconds)"))?;
            Ok((Duration::from_millis(ms), true))
        }
        None => Ok((DEFAULT_REMOTE_TIMEOUT, false)),
    }
}

/// Connects to a daemon honoring the resolved timeout. An explicitly
/// chosen timeout is also installed as the per-response deadline
/// ([`Client::set_op_timeout`]); the default leaves response waits
/// unbounded because a cold synthesis legitimately takes a while.
fn connect_remote(args: &[String], addr: &str) -> Result<Client, String> {
    let (timeout, explicit) = remote_timeout(args)?;
    let mut client =
        Client::connect(addr, timeout).map_err(|e| format!("connecting to {addr}: {e}"))?;
    if explicit {
        client.set_op_timeout(Some(timeout));
    }
    Ok(client)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("versions") => cmd_versions(),
        Some("run") => cmd_run(&args[1..]),
        Some("translate") => cmd_translate(&args[1..]),
        Some("synthesize") => cmd_synthesize(&args[1..]),
        Some("difftest") => cmd_difftest(&args[1..]),
        Some("opt") => cmd_opt(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("trace-report") => cmd_trace_report(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `siro help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "siro - synthesis-powered IR version translation (ASPLOS 2024 reproduction)

USAGE:
    siro versions                                    list the IR version catalog
    siro run <file>                                  interpret a textual IR module
    siro translate --to <ver> <file> [-o <out>]      translate across versions
                   [--synthesized]                   use a corpus-synthesized translator
                   [--remote <addr>]                 translate via a siro-serve daemon
    siro synthesize --from <ver> --to <ver>          synthesize instruction translators
                   [--emit-code]                     print the generated source
    siro difftest [--pairs <a:b,...>]                fuzz synthesized translators
                   [--budget <secs>] [--seed <n>]    (defaults: 13.0:3.6, 10 s, 42)
                   [--mid <ver>] [--fault <spec>]    chain intermediate; injected fault
                   [--route-mids <n>]                fuzz the top-n router-ranked paths
                   [--expect-failure]                require a caught+shrunk failure
                   [--regressions <dir>] [-o <json>] artifact dir; BENCH_difftest.json
    siro opt <file> [-o <out>]                       run the optimizer pipeline
    siro serve [--addr <host:port>]                  run the translation daemon
               [--threads <n>] [--queue <n>]         (defaults: SIRO_THREADS, 64)
               [--engine event|threaded]             serving engine (default event)
               [--admission-rps <n>]                 per-peer admission budget (default off)
               [--admission-burst <n>]               token-bucket burst (default 1s of budget)
               [--store <dir>]                       persist translators; warm-start at boot
               [--store-validation off|checksum|full] load-time validation (default checksum)
               [--store-max-bytes <n>]               GC the store down to <n> bytes after writes
               [--no-compile]                        serve on the interpreter only (skip the
                                                     compiled tier; see docs/COMPILED.md)
    siro loadgen [--remote <addr>]                   open-loop rate sweep (docs/SERVING.md);
               [--engine event|threaded]             boots an in-process daemon unless --remote
               [--rates <r1,r2,...>] [--slo-ms <n>]  (defaults: 500,1000,2000,4000; 25 ms)
               [--connections <n>] [--duration-ms <n>] (defaults: 64, 1000)
               [--pairs <a:b,...>] [--synthesized]   version-pair mix (default 13.0:3.6)
               [-o <json>]                           write a loadtest-v1 JSON report
    siro route plan --from <ver> --to <ver>          show the cheapest translation route
               [--store <dir>]                       classify edges against a store
    siro route matrix [--store <dir>]                plan every catalog pair (hop-count grid)
    siro store warm --dir <dir> [--pairs <a:b,...>]  synthesize and persist translators
               [--validation off|checksum|full]      (default pair 13.0:3.6)
    siro store ls --dir <dir>                        list persisted translators
    siro store gc --dir <dir> --max-bytes <n>        sweep temp files; evict LRU over <n> bytes
    siro store verify --dir <dir>                    re-validate every entry against the corpus
    siro stats --remote <addr>                       print a daemon's STATS page
    siro metrics --remote <addr>                     print a daemon's Prometheus METRICS page
    siro trace-report [<trace.json>]                 aggregate a SIRO_TRACE Chrome trace
    siro shutdown --remote <addr>                    gracefully stop a daemon

    Remote commands (translate --remote, stats, metrics, shutdown) accept
    --timeout-ms <n>: connect + I/O + per-response deadline (default 30 s,
    response waits unbounded unless set explicitly).

ENVIRONMENT:
    SIRO_TRACE=1          record spans/counters; synthesize and serve write
                          a Chrome trace_event JSON on exit
    SIRO_TRACE_FILE=path  where to write it (default siro_trace.json)
    SIRO_THREADS=n        worker threads for synthesis and serving
    SIRO_COMPILE=0        disable the compiled translate tier (interpreter only);
                          `siro serve --no-compile` does the same per-invocation
    SIRO_CLIENT_TIMEOUT_MS=n  default for --timeout-ms on remote commands"
    );
}

fn parse_version(s: &str) -> Result<IrVersion, String> {
    let (maj, min) = s
        .split_once('.')
        .ok_or_else(|| format!("version `{s}` must look like `13.0`"))?;
    Ok(IrVersion::new(
        maj.parse().map_err(|_| format!("bad major in `{s}`"))?,
        min.parse().map_err(|_| format!("bad minor in `{s}`"))?,
    ))
}

/// Parses a dialect-qualified version: bare `13.0` is Siro, `wir2.0` (or
/// `wir:2.0`) is the stack-machine family.
fn parse_dialect_version(s: &str) -> Result<siro::ir::DialectVersion, String> {
    s.parse()
        .map_err(|_| format!("version `{s}` must look like `13.0` or `wir2.0`"))
}

fn parse_engine(s: &str) -> Result<EngineMode, String> {
    match s {
        "event" => Ok(EngineMode::Event),
        "threaded" => Ok(EngineMode::Threaded),
        other => Err(format!("bad --engine `{other}` (event|threaded)")),
    }
}

fn engine_label(engine: EngineMode) -> &'static str {
    match engine {
        EngineMode::Event => "event",
        EngineMode::Threaded => "threaded",
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--")
            && a != "--synthesized"
            && a != "--emit-code"
            && a != "--expect-failure"
        {
            skip = true;
            continue;
        }
        if a == "-o" {
            skip = true;
            continue;
        }
        if !a.starts_with('-') {
            out.push(args[i].as_str());
        }
    }
    out
}

fn load_module(path: &str) -> Result<Module, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let m = parse::parse_module(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    verify::verify_module(&m).map_err(|e| format!("{path} does not verify: {e}"))?;
    Ok(m)
}

fn emit_module(m: &Module, out: Option<&str>) -> Result<(), String> {
    let text = write::write_module(m);
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_versions() -> Result<(), String> {
    println!("{:>8} | {:>8} | notes", "version", "#opcodes");
    println!("{}", "-".repeat(60));
    for v in IrVersion::CATALOG {
        let mut notes = Vec::new();
        if v.explicit_load_type_in_text() {
            notes.push("explicit load/gep types");
        }
        if v.builders_require_explicit_type() {
            notes.push("typed builders (Fig. 13)");
        }
        if v.opaque_pointers_in_text() {
            notes.push("opaque ptr");
        }
        println!(
            "{:>8} | {:>8} | {}",
            v.to_string(),
            v.instruction_set().len(),
            notes.join(", ")
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let [path] = positional(args)[..] else {
        return Err("usage: siro run <file>".into());
    };
    let m = load_module(path)?;
    let outcome = Machine::new(&m)
        .run_main()
        .map_err(|e| format!("running {path}: {e}"))?;
    match outcome.result {
        siro::ir::interp::ExecResult::Returned(_) => {
            println!(
                "main() = {:?} ({} steps)",
                outcome.return_int(),
                outcome.steps
            );
            Ok(())
        }
        siro::ir::interp::ExecResult::Trapped(t) => Err(format!("trapped: {t}")),
    }
}

fn corpus_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

fn cmd_translate(args: &[String]) -> Result<(), String> {
    let to_any = parse_dialect_version(flag_value(args, "--to").ok_or("missing --to <version>")?)?;
    let [path] = positional(args)[..] else {
        return Err(
            "usage: siro translate --to <ver> <file> [-o <out>] [--synthesized] [--remote <addr>]"
                .into(),
        );
    };
    if let Some(addr) = flag_value(args, "--remote") {
        return cmd_translate_remote(args, addr, to_any, path);
    }
    // A WIR endpoint (either side) goes through the dual-catalog router;
    // the classic Siro→Siro paths below are untouched.
    let Some(to) = to_any.as_siro() else {
        return cmd_translate_cross(args, to_any, path);
    };
    {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        if siro::wir::parse::looks_like_wir(&text) {
            return cmd_translate_cross(args, to_any, path);
        }
    }
    let m = load_module(path)?;
    let skel = Skeleton::new(to);
    let translated = if args.iter().any(|a| a == "--synthesized") {
        eprintln!(
            "synthesizing a {} -> {} translator from the corpus ...",
            m.version, to
        );
        let outcome = Synthesizer::for_pair(m.version, to)
            .synthesize(&corpus_tests(m.version, to))
            .map_err(|e| format!("synthesis failed: {e}"))?;
        skel.translate_module(&m, &outcome.translator)
    } else {
        skel.translate_module(&m, &ReferenceTranslator)
    }
    .map_err(|e| format!("translation failed: {e}"))?;
    verify::verify_module(&translated).map_err(|e| format!("output does not verify: {e}"))?;
    emit_module(&translated, flag_value(args, "-o"))
}

/// `siro translate` with a WIR endpoint on either side: parse whichever
/// dialect the file holds, acquire a composed route over the dual catalog
/// (WIR translator hops, anchor bridges), and emit the result in the
/// target dialect. `--synthesized` is implied — there is no reference
/// translator across dialects.
fn cmd_translate_cross(
    args: &[String],
    to: siro::ir::DialectVersion,
    path: &str,
) -> Result<(), String> {
    use siro::synth::{RouteOutcome, Router};
    use siro::wir::any::AnyModule;

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let m = AnyModule::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    m.verify()
        .map_err(|e| format!("{path} does not verify: {e}"))?;
    let source = m.dialect_version();
    eprintln!("routing {source} -> {to} over the dual catalog ...");
    let router = Router::with_wir();
    let acquired = router
        .acquire(source, to)
        .map_err(|e| format!("no translator for {source} -> {to}: {e}"))?;
    let out = match &acquired.outcome {
        RouteOutcome::Composed(chain) => chain
            .translate_any_owned(m)
            .map_err(|e| format!("translation failed: {e}"))?,
        RouteOutcome::Direct(_) => {
            return Err("cross-dialect request resolved to a direct Siro translator".into())
        }
    };
    out.verify()
        .map_err(|e| format!("output does not verify: {e}"))?;
    let rendered = out.print();
    match flag_value(args, "-o") {
        Some(out_path) => {
            std::fs::write(out_path, rendered).map_err(|e| format!("writing {out_path}: {e}"))
        }
        None => {
            print!("{rendered}");
            Ok(())
        }
    }
}

/// `siro translate --remote`: ship the module text to a daemon and emit
/// what comes back. The daemon parses/verifies server-side, so this path
/// deliberately does not parse locally — the wire carries the raw text.
fn cmd_translate_remote(
    args: &[String],
    addr: &str,
    to: siro::ir::DialectVersion,
    path: &str,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let source = siro::wir::any::AnyModule::parse(&text)
        .map_err(|e| format!("parsing {path}: {e}"))?
        .dialect_version();
    // Cross-dialect pairs have no reference translator: imply
    // `--synthesized` so the daemon routes instead of rejecting.
    let cross = source.as_siro().is_none() || to.as_siro().is_none();
    let mode = if cross || args.iter().any(|a| a == "--synthesized") {
        TranslateMode::Synthesized
    } else {
        TranslateMode::Reference
    };
    let mut client = connect_remote(args, addr)?;
    let out = client
        .translate(source, to, mode, text)
        .map_err(|e| format!("remote translation failed: {e}"))?;
    eprintln!(
        "translated {source} -> {to} remotely in {:.3} ms (cache {})",
        out.timings.total as f64 / 1e6,
        if out.cache_hit { "hit" } else { "miss" }
    );
    match flag_value(args, "-o") {
        Some(out_path) => {
            std::fs::write(out_path, out.text).map_err(|e| format!("writing {out_path}: {e}"))
        }
        None => {
            print!("{}", out.text);
            Ok(())
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServeConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(n) = flag_value(args, "--threads") {
        config.threads = Some(n.parse().map_err(|_| format!("bad --threads `{n}`"))?);
    }
    if let Some(n) = flag_value(args, "--queue") {
        config.queue_capacity = n.parse().map_err(|_| format!("bad --queue `{n}`"))?;
    }
    if let Some(dir) = flag_value(args, "--store") {
        config.store_dir = Some(dir.into());
    }
    if let Some(mode) = flag_value(args, "--store-validation") {
        config.store_validation = mode
            .parse()
            .map_err(|e| format!("bad --store-validation: {e}"))?;
    }
    if let Some(n) = flag_value(args, "--store-max-bytes") {
        config.store_max_bytes = Some(
            n.parse()
                .map_err(|_| format!("bad --store-max-bytes `{n}`"))?,
        );
    }
    if let Some(engine) = flag_value(args, "--engine") {
        config.engine = parse_engine(engine)?;
    }
    if let Some(r) = flag_value(args, "--admission-rps") {
        config.admission.rate_per_sec = Some(
            r.parse()
                .map_err(|_| format!("bad --admission-rps `{r}`"))?,
        );
    }
    if let Some(b) = flag_value(args, "--admission-burst") {
        config.admission.burst = Some(
            b.parse()
                .map_err(|_| format!("bad --admission-burst `{b}`"))?,
        );
    }
    if args.iter().any(|a| a == "--no-compile") {
        siro::synth::set_compile_enabled(false);
    }
    let engine_label = engine_label(config.engine);
    let admission = config.admission.rate_per_sec;
    let handle = siro::serve::start(config).map_err(|e| format!("starting server: {e}"))?;
    // Parsed by scripts (and the CI smoke test) to discover the port.
    println!("siro-serve listening on {}", handle.addr());
    let store = siro::synth::store_stats();
    if store.attached {
        println!(
            "store attached | warm-loaded {} translator(s), {} corrupt entr{} skipped",
            store.warm_loaded,
            store.corrupt,
            if store.corrupt == 1 { "y" } else { "ies" }
        );
    }
    println!(
        "engine {engine_label} | workers {} | queue capacity {}{} | \
         shut down with `siro shutdown --remote {}`",
        handle.workers(),
        handle.queue_capacity(),
        admission
            .map(|r| format!(" | admission {r} req/s per peer"))
            .unwrap_or_default(),
        handle.addr()
    );
    handle.wait();
    finish_trace();
    eprintln!("siro-serve drained and stopped");
    Ok(())
}

/// `siro loadgen`: open-loop rate sweep against a daemon. By default it
/// boots an in-process server (pick the engine with `--engine`) so one
/// command answers "what does this box sustain"; `--remote` points the
/// sweep at an already-running daemon instead.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use siro::loadgen::{corpus_payloads, sweep, EngineRun, LoadgenConfig};
    use std::net::ToSocketAddrs;

    let pairs_spec = flag_value(args, "--pairs").unwrap_or("13.0:3.6");
    let mut pairs = Vec::new();
    for pair in pairs_spec.split(',') {
        let (a, b) = pair
            .split_once(':')
            .ok_or_else(|| format!("pair `{pair}` must look like `13.0:3.6`"))?;
        pairs.push((parse_version(a)?, parse_version(b)?));
    }
    let mode = if args.iter().any(|a| a == "--synthesized") {
        TranslateMode::Synthesized
    } else {
        TranslateMode::Reference
    };
    let rates: Vec<f64> = match flag_value(args, "--rates") {
        Some(spec) => {
            let mut out = Vec::new();
            for s in spec.split(',') {
                out.push(
                    s.trim()
                        .parse()
                        .map_err(|_| format!("bad --rates entry `{s}`"))?,
                );
            }
            out
        }
        None => vec![500.0, 1000.0, 2000.0, 4000.0],
    };
    let parse_num = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(s) => s.parse().map_err(|_| format!("bad {name} `{s}`")),
            None => Ok(default),
        }
    };
    let connections = parse_num("--connections", 64)?;
    let duration_ms = parse_num("--duration-ms", 1000)?;
    let slo_ms: f64 = match flag_value(args, "--slo-ms") {
        Some(s) => s.parse().map_err(|_| format!("bad --slo-ms `{s}`"))?,
        None => 25.0,
    };

    // An in-process server unless --remote points at a running daemon.
    let handle = match flag_value(args, "--remote") {
        Some(_) => None,
        None => {
            let mut config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                queue_capacity: 512,
                read_timeout: Duration::from_millis(100),
                ..ServeConfig::default()
            };
            if let Some(engine) = flag_value(args, "--engine") {
                config.engine = parse_engine(engine)?;
            }
            if let Some(n) = flag_value(args, "--threads") {
                config.threads = Some(n.parse().map_err(|_| format!("bad --threads `{n}`"))?);
            }
            Some(siro::serve::start(config).map_err(|e| format!("starting server: {e}"))?)
        }
    };
    let (addr, engine) = match (&handle, flag_value(args, "--remote")) {
        (Some(h), _) => (h.addr(), engine_label(h.engine_mode()).to_string()),
        (None, Some(remote)) => (
            remote
                .to_socket_addrs()
                .map_err(|e| format!("resolving {remote}: {e}"))?
                .next()
                .ok_or_else(|| format!("{remote} resolved to nothing"))?,
            "remote".to_string(),
        ),
        (None, None) => unreachable!("either in-process or --remote"),
    };

    let config = LoadgenConfig {
        addr,
        connections,
        duration: Duration::from_millis(duration_ms as u64),
        rates_rps: rates,
        slo_p99_ms: slo_ms,
        payloads: corpus_payloads(&pairs, mode),
        warmup: true,
        ..LoadgenConfig::default()
    };
    eprintln!(
        "loadgen [{engine}]: {addr}, {connections} connections, \
         {} pair(s), SLO p99 <= {slo_ms} ms",
        pairs.len()
    );
    let report = sweep(&config)?;
    print!("{}", siro::loadgen::render_table(&report));

    if let Some(out) = flag_value(args, "-o") {
        let run = EngineRun {
            engine,
            workers: handle.as_ref().map(|h| h.workers()).unwrap_or(0),
            connections,
            report,
        };
        let json = siro::loadgen::render_loadtest_json(&[run]);
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("report written to {out}");
    }
    if let Some(h) = handle {
        h.shutdown();
    }
    Ok(())
}

/// `siro store <warm|ls|gc|verify>`: manage a persistent translator
/// `siro route plan|matrix`: inspect the version-graph router (see
/// `docs/ROUTING.md`). With `--store`, edges are classified against the
/// persisted translators in that directory (warm vs cold).
fn cmd_route(args: &[String]) -> Result<(), String> {
    use siro::synth::{self, Router, StoreConfig, TranslatorStore, ValidationMode};

    const USAGE: &str = "usage: siro route <plan|matrix> [--from <ver> --to <ver>] \
                         [--store <dir>] [--dialects]";
    let sub = args.first().map(String::as_str).ok_or(USAGE)?;
    let previous = match flag_value(args, "--store") {
        Some(dir) => {
            let store = TranslatorStore::open(StoreConfig {
                dir: dir.into(),
                validation: ValidationMode::default(),
                max_bytes: None,
            })
            .map_err(|e| format!("opening store {dir}: {e}"))?;
            Some(synth::set_active_store(Some(std::sync::Arc::new(store))))
        }
        None => None,
    };
    // `--dialects` widens the node set to both catalogs (WIR versions and
    // the anchor bridges); the default stays Siro-only.
    let router = if args.iter().any(|a| a == "--dialects") {
        Router::with_wir()
    } else {
        Router::new()
    };
    let result = match sub {
        "plan" => {
            let from =
                parse_dialect_version(flag_value(args, "--from").ok_or("missing --from <ver>")?)?;
            let to = parse_dialect_version(flag_value(args, "--to").ok_or("missing --to <ver>")?)?;
            match router.plan(from, to) {
                Some(plan) => {
                    println!("{}", plan.describe());
                    for hop in &plan.hops {
                        let observed = hop
                            .observed_us
                            .map(|us| format!(", observed {us}us"))
                            .unwrap_or_default();
                        println!(
                            "  {} -> {}: {} (cost {}us{observed})",
                            hop.from, hop.to, hop.class, hop.cost_us
                        );
                    }
                    Ok(())
                }
                None => Err(format!("no route from {from} to {to}")),
            }
        }
        "matrix" => {
            let nodes = router.graph().nodes().to_vec();
            let matrix = router.matrix();
            print!("{:>6} |", "from\\to");
            for v in &nodes {
                print!("{:>6}", v.to_string());
            }
            println!();
            println!("{}", "-".repeat(8 + 6 * nodes.len()));
            let (mut direct, mut composed, mut unreachable) = (0usize, 0usize, 0usize);
            for (i, row) in matrix.chunks(nodes.len()).enumerate() {
                print!("{:>7} |", nodes[i].to_string());
                for ((from, to), plan) in row {
                    match plan {
                        Some(p) => {
                            if *from != *to {
                                if p.is_direct() {
                                    direct += 1;
                                } else {
                                    composed += 1;
                                }
                            }
                            print!("{:>6}", p.hop_count());
                        }
                        None => {
                            unreachable += 1;
                            print!("{:>6}", "-");
                        }
                    }
                }
                println!();
            }
            println!(
                "{} pair(s): {direct} direct, {composed} composed, {unreachable} unreachable",
                nodes.len() * (nodes.len() - 1),
            );
            if unreachable > 0 {
                Err(format!("{unreachable} pair(s) are unreachable"))
            } else {
                Ok(())
            }
        }
        other => Err(format!("unknown route subcommand `{other}` ({USAGE})")),
    };
    if let Some(previous) = previous {
        synth::set_active_store(previous);
    }
    result
}

/// store directory (see `docs/PERSISTENCE.md`).
fn cmd_store(args: &[String]) -> Result<(), String> {
    use siro::synth::{self, StoreConfig, TranslatorStore, ValidationMode};

    const USAGE: &str = "usage: siro store <warm|ls|gc|verify> --dir <dir> \
                         [--pairs <a:b,...>] [--validation <mode>] [--max-bytes <n>]";
    let sub = args.first().map(String::as_str).ok_or(USAGE)?;
    let dir = flag_value(args, "--dir").ok_or("missing --dir <path>")?;
    let validation = match flag_value(args, "--validation") {
        Some(s) => s
            .parse::<ValidationMode>()
            .map_err(|e| format!("bad --validation: {e}"))?,
        None => ValidationMode::default(),
    };
    let store = TranslatorStore::open(StoreConfig {
        dir: dir.into(),
        validation,
        max_bytes: None,
    })
    .map_err(|e| format!("opening store {dir}: {e}"))?;
    match sub {
        "warm" => {
            let pairs_spec = flag_value(args, "--pairs").unwrap_or("13.0:3.6");
            let previous = synth::set_active_store(Some(std::sync::Arc::new(store)));
            let result = (|| {
                for pair in pairs_spec.split(',') {
                    let (a, b) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("pair `{pair}` must look like `13.0:3.6`"))?;
                    let src = parse_version(a)?;
                    let tgt = parse_version(b)?;
                    let tests = corpus_tests(src, tgt);
                    let config = synth::SynthesisConfig::new(src, tgt);
                    let lookup = synth::TranslatorCache::lookup_or_synthesize(config, &tests)
                        .map_err(|e| format!("synthesis {src} -> {tgt} failed: {e}"))?;
                    println!(
                        "{src} -> {tgt}: {}",
                        if lookup.from_store {
                            "already stored (validated on load)"
                        } else if lookup.fresh {
                            "synthesized and stored"
                        } else {
                            "already cached in this process"
                        }
                    );
                }
                Ok(())
            })();
            synth::set_active_store(previous);
            let s = synth::store_stats();
            println!(
                "store {dir}: {} write(s), {} validated load(s), {} corrupt",
                s.writes, s.hits, s.corrupt
            );
            finish_trace();
            result
        }
        "ls" => {
            let entries = store.entries().map_err(|e| format!("listing {dir}: {e}"))?;
            println!("{:>20} | {:>10} | entry", "pair", "bytes");
            println!("{}", "-".repeat(60));
            for e in &entries {
                let pair = e
                    .key
                    .map(|k| format!("{} -> {}", k.source, k.target))
                    .unwrap_or_else(|| "(unreadable)".into());
                let name = e.path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
                println!("{pair:>20} | {:>10} | {name}", e.bytes);
            }
            println!(
                "{} entr{}",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            Ok(())
        }
        "gc" => {
            let max: u64 = flag_value(args, "--max-bytes")
                .ok_or("missing --max-bytes <n>")?
                .parse()
                .map_err(|_| "bad --max-bytes".to_string())?;
            let report = store.gc(max).map_err(|e| format!("gc {dir}: {e}"))?;
            println!(
                "scanned {} entr{}, removed {}, swept {} stale temp file(s), {} -> {} bytes",
                report.scanned,
                if report.scanned == 1 { "y" } else { "ies" },
                report.removed,
                report.stale_tmp_removed,
                report.bytes_before,
                report.bytes_after
            );
            Ok(())
        }
        "verify" => {
            let outcomes = store.verify().map_err(|e| format!("verify {dir}: {e}"))?;
            let mut corrupt = 0usize;
            for o in &outcomes {
                let name = o.path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
                let pair = o
                    .pair
                    .map(|(s, t)| format!("{s} -> {t}"))
                    .unwrap_or_else(|| "(unreadable)".into());
                match &o.result {
                    Ok(()) => println!("ok      {pair:>16}  {name}"),
                    Err(reason) => {
                        corrupt += 1;
                        println!("CORRUPT {pair:>16}  {name}: {reason}");
                    }
                }
            }
            if corrupt > 0 {
                Err(format!(
                    "{corrupt} corrupt entr{} in {dir}",
                    if corrupt == 1 { "y" } else { "ies" }
                ))
            } else {
                println!(
                    "{} entr{} verified",
                    outcomes.len(),
                    if outcomes.len() == 1 { "y" } else { "ies" }
                );
                Ok(())
            }
        }
        other => Err(format!("unknown store subcommand `{other}` ({USAGE})")),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--remote").ok_or("usage: siro stats --remote <addr>")?;
    let mut client = connect_remote(args, addr)?;
    let page = client.stats().map_err(|e| format!("fetching stats: {e}"))?;
    print!("{page}");
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--remote").ok_or("usage: siro metrics --remote <addr>")?;
    let mut client = connect_remote(args, addr)?;
    let page = client
        .metrics()
        .map_err(|e| format!("fetching metrics: {e}"))?;
    print!("{page}");
    Ok(())
}

fn cmd_trace_report(args: &[String]) -> Result<(), String> {
    let default = siro::trace::export::default_trace_path();
    let path = positional(args)
        .first()
        .map(std::path::PathBuf::from)
        .unwrap_or(default);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "reading {}: {e} (run with SIRO_TRACE=1 first)",
            path.display()
        )
    })?;
    let snapshot = siro::trace::export::parse_chrome_trace(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "{} spans, {} counters from {}\n",
        snapshot.spans.len(),
        snapshot.counters.len(),
        path.display()
    );
    print!("{}", siro::trace::export::render_aggregate(&snapshot));
    Ok(())
}

/// Writes the collected trace (if tracing is on) and says where it went.
fn finish_trace() {
    if !siro::trace::enabled() {
        return;
    }
    let path = siro::trace::export::default_trace_path();
    match siro::trace::export::write_chrome_trace(&path) {
        Ok(p) => eprintln!(
            "trace written to {} (load in Perfetto or run `siro trace-report {}`)",
            p.display(),
            p.display()
        ),
        Err(e) => eprintln!("warning: writing trace {}: {e}", path.display()),
    }
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--remote").ok_or("usage: siro shutdown --remote <addr>")?;
    let mut client = connect_remote(args, addr)?;
    client
        .shutdown()
        .map_err(|e| format!("requesting shutdown: {e}"))?;
    println!("shutdown acknowledged; {addr} is draining");
    Ok(())
}

fn cmd_synthesize(args: &[String]) -> Result<(), String> {
    let from = parse_version(flag_value(args, "--from").ok_or("missing --from <version>")?)?;
    let to = parse_version(flag_value(args, "--to").ok_or("missing --to <version>")?)?;
    let tests = corpus_tests(from, to);
    eprintln!("pair {from} -> {to}: {} usable corpus tests", tests.len());
    let outcome = Synthesizer::for_pair(from, to)
        .synthesize(&tests)
        .map_err(|e| format!("synthesis failed: {e}"))?;
    let r = &outcome.report;
    println!(
        "synthesized {} instruction translators in {:.2}s \
         ({} per-test translators validated)",
        outcome.translator.covered_kinds().len(),
        r.timings.total().as_secs_f64(),
        r.assignments_validated
    );
    println!(
        "candidate space {} LOC -> final translator {} LOC",
        r.candidate_loc, r.translator_loc
    );
    let redundant = r.redundant_tests();
    if !redundant.is_empty() {
        println!("redundant tests: {}", redundant.join(", "));
    }
    if args.iter().any(|a| a == "--emit-code") {
        println!("\n{}", outcome.rendered);
    }
    // Smoke-check the result against the corpus, like the paper's review.
    let skel = Skeleton::new(to);
    for case in siro::testcases::corpus_for_pair(from, to) {
        let m = case.build(from);
        let t = skel
            .translate_module(&m, &outcome.translator)
            .map_err(|e| format!("self-check {} failed: {e}", case.name))?;
        let got = Machine::new(&t)
            .run_main()
            .map_err(|e| e.to_string())?
            .return_int();
        if got != Some(case.oracle) {
            return Err(format!(
                "self-check {}: got {got:?}, want {}",
                case.name, case.oracle
            ));
        }
    }
    println!("self-check: all corpus cases translate and meet their oracles");
    finish_trace();
    Ok(())
}

/// Picks the chain intermediate for a pair the way the version-graph
/// router would: the cheapest two-hop decomposition under the current
/// edge costs.
fn pick_mid(src: IrVersion, tgt: IrVersion) -> IrVersion {
    *siro::difftest::routed_mids(src, tgt)
        .first()
        .expect("catalog has more than two versions")
}

fn cmd_difftest(args: &[String]) -> Result<(), String> {
    use siro::difftest::{DifftestConfig, RegressionArtifact};

    let pairs_spec = flag_value(args, "--pairs").unwrap_or("13.0:3.6");
    let budget: f64 = match flag_value(args, "--budget") {
        Some(s) => s.parse().map_err(|_| format!("bad --budget `{s}`"))?,
        None => 10.0,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => s.parse().map_err(|_| format!("bad --seed `{s}`"))?,
        None => 42,
    };
    let fault = match flag_value(args, "--fault") {
        Some(s) => Some(
            s.parse::<siro::synth::SynthFault>()
                .map_err(|e| format!("bad --fault: {e}"))?,
        ),
        None => None,
    };
    let mid_override = match flag_value(args, "--mid") {
        Some(s) => Some(parse_version(s)?),
        None => None,
    };
    let route_mids: usize = match flag_value(args, "--route-mids") {
        Some(s) => s.parse().map_err(|_| format!("bad --route-mids `{s}`"))?,
        None => 1,
    };
    let expect_failure = args.iter().any(|a| a == "--expect-failure");
    let regressions = flag_value(args, "--regressions");

    let mut reports = Vec::new();
    let mut any_failure = false;
    let mut any_shrunk = false;
    for pair in pairs_spec.split(',') {
        let (a, b) = pair
            .split_once(':')
            .ok_or_else(|| format!("pair `{pair}` must look like `13.0:3.6`"))?;
        let src = parse_version(a)?;
        let tgt = parse_version(b)?;
        let mid = mid_override.unwrap_or_else(|| pick_mid(src, tgt));
        let mut cfg = DifftestConfig::new(src, mid, tgt);
        cfg.seed = seed;
        cfg.budget = Duration::from_secs_f64(budget);
        cfg.fault = fault;
        cfg.route_mids = route_mids;
        eprintln!(
            "difftest {src} -> {tgt} (chain via {mid}, budget {budget}s{})",
            fault
                .map(|f| format!(", injected fault {f}"))
                .unwrap_or_default()
        );
        let report = siro::difftest::run(&cfg).map_err(|e| format!("synthesis failed: {e}"))?;
        println!(
            "pair {src}:{tgt}: {} execs ({:.1}/s), corpus {} ({} kinds, {} beyond generation), \
             {} failures ({} distinct, {} duplicate sightings), {} skips",
            report.execs,
            report.execs_per_sec(),
            report.corpus_size,
            report.corpus_kinds.len(),
            report.new_kinds().len(),
            report.failures.len(),
            report.distinct_failures(),
            report.duplicate_failures,
            report.skips
        );
        for f in &report.failures {
            println!(
                "  [{}/{}] path via {}, mutator {}: {} ({} -> {} insts{})",
                f.oracle,
                f.family.name(),
                f.mid,
                f.mutator,
                f.detail,
                f.original_insts,
                f.reduced_insts,
                if f.shrunk { ", shrunk" } else { ", NOT SHRUNK" }
            );
        }
        if let Some(dir) = regressions {
            for f in &report.failures {
                let artifact = RegressionArtifact::from_record(src, tgt, fault, f);
                let path = artifact
                    .save(std::path::Path::new(dir))
                    .map_err(|e| format!("writing regression artifact: {e}"))?;
                println!("  regression artifact: {}", path.display());
            }
        }
        any_failure |= !report.failures.is_empty();
        any_shrunk |= report.failures.iter().any(|f| f.shrunk);
        reports.push(report);
    }

    let json = siro::difftest::render_difftest_json(&reports);
    let json_path = flag_value(args, "-o")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(siro::difftest::report::json_path);
    std::fs::write(&json_path, json)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    eprintln!("report written to {}", json_path.display());

    if expect_failure {
        if any_failure && any_shrunk {
            println!("expected failure was found and shrunk");
            Ok(())
        } else if any_failure {
            Err("--expect-failure: a failure was found but did not shrink to the target".into())
        } else {
            Err("--expect-failure: no oracle failure was found".into())
        }
    } else if any_failure {
        Err("oracle failures were found (see the report and artifacts)".into())
    } else {
        Ok(())
    }
}

fn cmd_opt(args: &[String]) -> Result<(), String> {
    let [path] = positional(args)[..] else {
        return Err("usage: siro opt <file> [-o <out>]".into());
    };
    let mut m = load_module(path)?;
    let stats = siro::opt::optimize(&mut m);
    verify::verify_module(&m).map_err(|e| format!("optimized module does not verify: {e}"))?;
    eprintln!(
        "mem2reg: {} slots; folded: {}; blocks removed: {}; dead insts: {}",
        stats.promoted_slots, stats.folded, stats.removed_blocks, stats.removed_insts
    );
    emit_module(&m, flag_value(args, "-o"))
}
