//! # siro — synthesis-powered IR version translation
//!
//! Facade crate for the Siro reproduction (ASPLOS 2024). Re-exports every
//! subsystem crate under one roof; see the README for the architecture and
//! `DESIGN.md` for the paper-to-module map.

pub use siro_analysis as analysis;
pub use siro_api as api;
pub use siro_core as core;
pub use siro_difftest as difftest;
pub use siro_fuzz as fuzz;
pub use siro_ir as ir;
pub use siro_kernel as kernel;
pub use siro_loadgen as loadgen;
pub use siro_opt as opt;
pub use siro_serve as serve;
pub use siro_study as study;
pub use siro_synth as synth;
pub use siro_testcases as testcases;
pub use siro_trace as trace;
pub use siro_wir as wir;
pub use siro_workloads as workloads;
