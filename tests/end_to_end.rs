//! Cross-crate integration tests: the full pipeline from synthesis to
//! clients, spanning every workspace crate.

use std::sync::Arc;

use siro::core::{InstTranslator, ReferenceTranslator, Skeleton};
use siro::ir::{interp::Machine, verify, IrVersion};
use siro::synth::{OracleTest, SynthesisConfig, SynthesisOutcome, Synthesizer, TranslatorCache};

fn oracle_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

/// Synthesizes through the process-wide cache, so tests in this binary
/// that need the same pair share one synthesis.
fn synth(src: IrVersion, tgt: IrVersion) -> Arc<SynthesisOutcome> {
    TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &oracle_tests(src, tgt))
        .expect("synthesis")
}

#[test]
fn synthesized_translator_handles_whole_corpus_for_pair_12_to_3_6() {
    let (src, tgt) = (IrVersion::V12_0, IrVersion::V3_6);
    let outcome = synth(src, tgt);
    let skel = Skeleton::new(tgt);
    for case in siro::testcases::corpus_for_pair(src, tgt) {
        let m = case.build(src);
        let t = skel.translate_module(&m, &outcome.translator).unwrap();
        verify::verify_module(&t).unwrap();
        assert_eq!(
            Machine::new(&t).run_main().unwrap().return_int(),
            Some(case.oracle),
            "case {}",
            case.name
        );
    }
}

#[test]
fn upgrade_pair_3_6_to_12_synthesizes_and_translates() {
    // Tab. 3 pair 10: low-to-high translation.
    let (src, tgt) = (IrVersion::V3_6, IrVersion::V12_0);
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&oracle_tests(src, tgt))
        .expect("synthesis");
    let skel = Skeleton::new(tgt);
    for case in siro::testcases::corpus_for_pair(src, tgt).iter().take(20) {
        let m = case.build(src);
        let t = skel.translate_module(&m, &outcome.translator).unwrap();
        verify::verify_module(&t).unwrap();
        assert_eq!(
            Machine::new(&t).run_main().unwrap().return_int(),
            Some(case.oracle),
            "case {}",
            case.name
        );
    }
}

#[test]
fn close_pair_5_to_4_covers_windows_eh() {
    let (src, tgt) = (IrVersion::V5_0, IrVersion::V4_0);
    let tests = oracle_tests(src, tgt);
    // The extended corpus must contribute the EH cases here.
    assert!(tests.iter().any(|t| t.name.starts_with("eh_")));
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .expect("synthesis");
    let skel = Skeleton::new(tgt);
    for case in siro::testcases::corpus_for_pair(src, tgt) {
        let m = case.build(src);
        let t = skel.translate_module(&m, &outcome.translator).unwrap();
        assert_eq!(
            Machine::new(&t).run_main().unwrap().return_int(),
            Some(case.oracle),
            "case {}",
            case.name
        );
    }
}

#[test]
fn pair_17_to_12_covers_callbr_and_freeze() {
    let (src, tgt) = (IrVersion::V17_0, IrVersion::V12_0);
    let tests = oracle_tests(src, tgt);
    assert!(tests.iter().any(|t| t.name.starts_with("callbr")));
    assert!(tests.iter().any(|t| t.name.starts_with("freeze")));
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .expect("synthesis");
    // callbr and freeze are *common* here, so the synthesized translator
    // must map them one-to-one, not lower them.
    let case = siro::testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "callbr_fallthrough")
        .unwrap();
    let m = case.build(src);
    let t = Skeleton::new(tgt)
        .translate_module(&m, &outcome.translator)
        .unwrap();
    let has_callbr = t
        .funcs
        .iter()
        .any(|f| f.insts.iter().any(|i| i.opcode == siro::ir::Opcode::CallBr));
    assert!(has_callbr, "callbr must survive a 17.0 -> 12.0 translation");
}

#[test]
fn chained_translation_12_to_3_6_to_3_0() {
    // Translate twice through the reference translator; semantics must
    // survive both hops (including the addrspacecast lowering on the
    // second hop).
    let skel_a = Skeleton::new(IrVersion::V3_6);
    let skel_b = Skeleton::new(IrVersion::V3_0);
    for case in siro::testcases::corpus_for_pair(IrVersion::V12_0, IrVersion::V3_6) {
        let m = case.build(IrVersion::V12_0);
        let hop1 = skel_a.translate_module(&m, &ReferenceTranslator).unwrap();
        let hop2 = skel_b
            .translate_module(&hop1, &ReferenceTranslator)
            .unwrap();
        verify::verify_module(&hop2).unwrap();
        assert_eq!(
            Machine::new(&hop2).run_main().unwrap().return_int(),
            Some(case.oracle),
            "case {}",
            case.name
        );
    }
}

#[test]
fn translated_text_roundtrips_through_the_low_version_reader() {
    // The whole point of translation: the low-version ecosystem can
    // serialize and re-read the output.
    let skel = Skeleton::new(IrVersion::V3_6);
    for case in siro::testcases::corpus_for_pair(IrVersion::V13_0, IrVersion::V3_6)
        .iter()
        .take(25)
    {
        let m = case.build(IrVersion::V13_0);
        let t = skel.translate_module(&m, &ReferenceTranslator).unwrap();
        let text = siro::ir::write::write_module(&t);
        assert!(text.contains("; IR version 3.6"));
        let reparsed = siro::ir::parse::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: {e}\n{text}", case.name));
        assert_eq!(
            Machine::new(&reparsed).run_main().unwrap().return_int(),
            Some(case.oracle),
            "case {}",
            case.name
        );
    }
}

#[test]
fn clients_compose_with_a_synthesized_translator() {
    // Tab. 4 and the kernel campaign driven by a *synthesized* (not
    // reference) translator.
    let outcome = synth(IrVersion::V12_0, IrVersion::V3_6);
    let results =
        siro::workloads::run_table4(&outcome.translator, IrVersion::V12_0, IrVersion::V3_6)
            .expect("table 4 pipeline");
    let shared: usize = results.iter().map(|r| r.diff.shared.len()).sum();
    let new: usize = results.iter().map(|r| r.diff.new.len()).sum();
    let missing: usize = results.iter().map(|r| r.diff.missing.len()).sum();
    assert_eq!((shared, new, missing), (253, 15, 8));

    // Multi-pair fan-out: both kernel translators synthesize concurrently
    // through the cache.
    let jobs: Vec<_> = [IrVersion::V14_0, IrVersion::V15_0]
        .into_iter()
        .map(|src| {
            (
                SynthesisConfig::new(src, IrVersion::V3_6),
                oracle_tests(src, IrVersion::V3_6),
            )
        })
        .collect();
    let mut outcomes = siro::synth::synthesize_all(&jobs).into_iter();
    let t14 = outcomes.next().unwrap().expect("synthesis 14");
    let t15 = outcomes.next().unwrap().expect("synthesis 15");
    let campaign = siro::kernel::run_campaign(
        &|v| -> Box<dyn InstTranslator> {
            if v == IrVersion::V14_0 {
                Box::new(t14.translator.clone())
            } else {
                Box::new(t15.translator.clone())
            }
        },
        IrVersion::V3_6,
    )
    .expect("kernel campaign");
    assert_eq!(campaign.total_bugs(), 80);
    assert_eq!(campaign.merged(), 56);
}

#[test]
fn fuzz_pipeline_with_synthesized_translator() {
    let outcome = synth(IrVersion::V12_0, IrVersion::V3_6);
    let rows = siro::fuzz::run_table5(
        &outcome.translator,
        IrVersion::V12_0,
        IrVersion::V3_6,
        siro::fuzz::Scale(0.005),
    )
    .expect("table 5 pipeline");
    let cves: usize = rows.iter().map(|r| r.cves).sum();
    let r_cves: usize = rows.iter().map(|r| r.r_cve).sum();
    assert_eq!(cves, 111);
    assert_eq!(r_cves, 95);
}
