//! Every intra-repo markdown link must resolve. The docs are the map of
//! the system (`docs/ARCHITECTURE.md` is the index), so a renamed file or
//! a typo'd relative path is a CI failure, not a reader's dead end.
//!
//! Scope: inline `[text](target)` links in every tracked `.md` file at
//! the repo root, under `docs/`, and under `crates/`. External schemes
//! (`http`, `https`, `mailto`) and pure in-page anchors (`#...`) are
//! skipped; a `path#anchor` link is checked for the path part only.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Collects the markdown files under the checked roots, skipping build
/// output and VCS internals.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != ".git" && name != "target" && name != "node_modules" {
                    stack.push(path);
                }
            } else if name.ends_with(".md") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Extracts inline-link targets from one markdown source. Deliberately
/// simple: `](target)` pairs outside fenced code blocks. Reference-style
/// links are rare enough here that inline coverage is the contract.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            let tail = &rest[i + 2..];
            let Some(end) = tail.find(')') else { break };
            let target = &tail[..end];
            // Markdown permits an optional title: `](path "title")`.
            let target = target.split_whitespace().next().unwrap_or("");
            if !target.is_empty() {
                out.push(target.to_string());
            }
            rest = &tail[end + 1..];
        }
    }
    out
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = repo_root();
    let mut files = markdown_files(&root);
    files.retain(|p| {
        let rel = p.strip_prefix(&root).unwrap_or(p);
        let first = rel
            .components()
            .next()
            .map(|c| c.as_os_str().to_string_lossy().into_owned());
        matches!(first.as_deref(), Some("docs") | Some("crates")) || rel.components().count() == 1
    });
    // PAPER.md / PAPERS.md / SNIPPETS.md are externally-retrieved reference
    // material; their links point at assets that were never part of this
    // repo and are not ours to fix.
    files.retain(|p| {
        !matches!(
            p.file_name().and_then(|n| n.to_str()),
            Some("PAPER.md" | "PAPERS.md" | "SNIPPETS.md")
        )
    });
    assert!(
        files.iter().any(|p| p.ends_with("docs/ARCHITECTURE.md")),
        "docs/ARCHITECTURE.md (the doc index) must exist"
    );

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let dir = file.parent().expect("md file has a parent");
        for target in link_targets(&text) {
            if is_external(&target) {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            let resolved = if let Some(stripped) = path_part.strip_prefix('/') {
                root.join(stripped)
            } else {
                dir.join(path_part)
            };
            checked += 1;
            if !resolved.exists() {
                broken.push(format!(
                    "{} -> {target} (resolved {})",
                    file.strip_prefix(&root).unwrap_or(file).display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(
        checked > 10,
        "link checker only saw {checked} links — scan roots are probably wrong"
    );
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n  {}",
        broken.join("\n  ")
    );
}
