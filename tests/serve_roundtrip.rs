//! Facade-level check that the served translation path (`siro::serve`)
//! agrees byte-for-byte with the in-process path (`siro::core`), the way
//! a downstream user of the `siro` crate would wire it.

use std::time::Duration;

use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::{interp::Machine, parse, write, IrVersion};
use siro::serve::{stats_value, Client, ServeConfig, TranslateMode};

#[test]
fn facade_serves_byte_identical_translations() {
    let handle = siro::serve::start(ServeConfig {
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(30)).expect("connect");

    for (src, tgt) in [
        (IrVersion::V13_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V12_0),
    ] {
        let case = siro::testcases::corpus_for_pair(src, tgt)
            .into_iter()
            .next()
            .expect("corpus has cases for the pair");
        let module = case.build(src);
        let text = write::write_module(&module);

        let served = client
            .translate(src, tgt, TranslateMode::Reference, text)
            .expect("served translation");
        let local = Skeleton::new(tgt)
            .translate_module(&module, &ReferenceTranslator)
            .expect("in-process translation");
        assert_eq!(served.text, write::write_module(&local), "{src} -> {tgt}");

        // The served text is a live module: it reparses and still meets
        // the corpus oracle.
        let reparsed = parse::parse_module(&served.text).expect("reparse served text");
        let got = Machine::new(&reparsed)
            .run_main()
            .expect("run served module")
            .return_int();
        assert_eq!(got, Some(case.oracle), "{src} -> {tgt} oracle");
    }

    let page = client.stats().expect("stats");
    assert_eq!(stats_value(&page, "translations"), Some(2));
    handle.shutdown();
}
