//! End-to-end acceptance for the second dialect: a SIRO↔WIR pair
//! synthesized by the unchanged pipeline serves through `siro serve`
//! (event engine, store-warm), and the cross-dialect
//! interpreter-differential oracle is clean over ≥500 fuzzed modules per
//! bridge anchor.
//!
//! This is the issue's acceptance bar in executable form; the
//! `cross_dialect` CI lane runs exactly this file plus the bench gate.

use std::time::Duration;

use siro::difftest::run_all_anchors;
use siro::ir::IrVersion;
use siro::serve::{Client, EngineMode, ServeConfig, TranslateMode};
use siro::synth::{raise_module, siro_behaviour, wir_behaviour};
use siro::wir::{generate_straightline, parse_module, write_module, WirVersion};

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(30)).expect("connect")
}

/// The full serve story for the second dialect, through the event engine
/// with a persistent store:
///
/// * a WIR→WIR pair and both SIRO↔WIR anchor directions serve
///   successfully over the wire;
/// * behaviour buckets survive every served translation;
/// * repeating a request is byte-identical (translator-cache warm);
/// * restarting the server on the same store directory stays
///   byte-identical (store-warm).
#[test]
fn cross_dialect_pairs_serve_store_warm_through_the_event_engine() {
    let store = std::env::temp_dir().join(format!("siro-cross-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let config = ServeConfig {
        threads: Some(2),
        engine: EngineMode::Event,
        store_dir: Some(store.clone()),
        ..ServeConfig::default()
    };

    let handle = siro::serve::start(config.clone()).expect("bind ephemeral port");
    let mut client = connect(handle.addr());

    // SIRO → WIR across the 13.0 ↔ wir2.0 anchor. Raising a straight-line
    // WIR module yields a Siro source guaranteed to sit in the bridge's
    // lowerable subset.
    let wir_src = generate_straightline(23, WirVersion::W2_0);
    let siro_src = raise_module(&wir_src, IrVersion::V13_0).expect("raise");
    let siro_text = siro::ir::write::write_module(&siro_src);
    let down = client
        .translate(
            IrVersion::V13_0,
            WirVersion::W2_0,
            TranslateMode::Synthesized,
            siro_text.clone(),
        )
        .expect("serve 13.0 -> wir2.0");
    let down_mod = parse_module(&down.text).expect("served WIR parses");
    assert_eq!(down_mod.version, WirVersion::W2_0);
    assert_eq!(
        siro_behaviour(&siro_src),
        wir_behaviour(&down_mod),
        "behaviour bucket must survive the served lowering"
    );

    // WIR → SIRO, the reverse direction over the same anchor.
    let up = client
        .translate(
            WirVersion::W2_0,
            IrVersion::V13_0,
            TranslateMode::Synthesized,
            write_module(&wir_src),
        )
        .expect("serve wir2.0 -> 13.0");
    let up_mod = siro::ir::parse::parse_module(&up.text).expect("served Siro parses");
    assert_eq!(up_mod.version, IrVersion::V13_0);
    assert_eq!(
        wir_behaviour(&wir_src),
        siro_behaviour(&up_mod),
        "behaviour bucket must survive the served raising"
    );

    // WIR → WIR within the catalog (synthesized translator hop).
    let w1 = generate_straightline(11, WirVersion::W1_0);
    let hop = client
        .translate(
            WirVersion::W1_0,
            WirVersion::W3_0,
            TranslateMode::Synthesized,
            write_module(&w1),
        )
        .expect("serve wir1.0 -> wir3.0");
    let hop_mod = parse_module(&hop.text).expect("served WIR parses");
    assert_eq!(hop_mod.version, WirVersion::W3_0);
    assert_eq!(wir_behaviour(&w1), wir_behaviour(&hop_mod));

    // Warm repeat on the live server: byte-identical.
    let down2 = client
        .translate(
            IrVersion::V13_0,
            WirVersion::W2_0,
            TranslateMode::Synthesized,
            siro_text.clone(),
        )
        .expect("warm repeat");
    assert_eq!(down.text, down2.text, "warm repeat must be byte-identical");

    handle.shutdown();

    // Store-warm restart: the prefetched store must reproduce the same
    // bytes without re-synthesis.
    let handle = siro::serve::start(config).expect("rebind");
    let mut client = connect(handle.addr());
    let down3 = client
        .translate(
            IrVersion::V13_0,
            WirVersion::W2_0,
            TranslateMode::Synthesized,
            siro_text,
        )
        .expect("store-warm serve");
    assert_eq!(
        down.text, down3.text,
        "store-warm restart must serve byte-identical translations"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

/// The issue's fuzzing bar: ≥500 modules through the cross-dialect
/// interpreter-differential oracle per anchor, with zero `cross-dialect`
/// failures outstanding and real coverage of the divergence bucket.
#[test]
fn cross_dialect_oracle_is_clean_over_500_fuzzed_modules_per_anchor() {
    for ((siro, wir), report) in run_all_anchors(500).expect("anchor sweep") {
        assert!(
            report.failures.is_empty(),
            "{siro}<->wir{wir}: {} cross-dialect failures, first: {:?}",
            report.failures.len(),
            report.failures.first().map(|f| &f.detail)
        );
        assert!(
            report.modules_checked >= 300,
            "{siro}<->wir{wir}: only {} of 500 modules were comparable",
            report.modules_checked
        );
        assert!(
            report.arith_cases > 0,
            "{siro}<->wir{wir}: the corpus never reached the arith bucket"
        );
    }
}
