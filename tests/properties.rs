//! Property-based tests over randomly generated programs: translation is
//! behaviour-preserving, serialization round-trips, and the verifier
//! accepts every translator output.
//!
//! The programs are driven by the deterministic `siro-rng` generator: each
//! property runs a fixed number of cases derived from a fixed seed, so
//! failures reproduce exactly (re-run with the printed case seed).

use siro_rng::{Rng, RngCore, SeedableRng, StdRng};

use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::{
    interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion, Module, Opcode, ValueRef,
};

/// One step of a random straight-line/diamond program.
#[derive(Debug, Clone)]
enum Step {
    /// Binary arithmetic on two earlier values.
    Bin(u8, usize, usize),
    /// Integer constant.
    Const(i32),
    /// Stack round trip of an earlier value.
    SlotRoundTrip(usize),
    /// Diamond: `v = (a < b) ? x : y` via branches and a phi.
    Diamond(usize, usize, usize, usize),
    /// A cast chain: trunc to i8, sign-extend back.
    Narrow(usize),
}

const BIN_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
];

fn random_step(rng: &mut StdRng) -> Step {
    match rng.gen_range(0..5u32) {
        0 => Step::Bin(
            rng.gen_range(0..9u8),
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize),
        ),
        1 => Step::Const(rng.gen_range(-1000..1000i32)),
        2 => Step::SlotRoundTrip(rng.gen_range(0..64usize)),
        3 => Step::Diamond(
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize),
        ),
        _ => Step::Narrow(rng.gen_range(0..64usize)),
    }
}

fn random_steps(rng: &mut StdRng, max_len: usize) -> Vec<Step> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| random_step(rng)).collect()
}

/// Builds a runnable module from a step list, in the given version.
fn build_program(steps: &[Step], version: IrVersion) -> Module {
    let mut m = Module::new("prop", version);
    let i32t = m.types.i32();
    let i8t = m.types.i8();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let mut values: Vec<ValueRef> = vec![
        ValueRef::const_int(i32t, 1),
        ValueRef::const_int(i32t, 7),
        ValueRef::const_int(i32t, -3),
    ];
    let pick = |values: &[ValueRef], i: usize| values[i % values.len()];
    for step in steps {
        match step {
            Step::Const(c) => values.push(ValueRef::const_int(i32t, i64::from(*c))),
            Step::Bin(op, a, bidx) => {
                let (x, y) = (pick(&values, *a), pick(&values, *bidx));
                let op = BIN_OPS[*op as usize % BIN_OPS.len()];
                // Mask shift amounts to keep semantics portable.
                let y = if matches!(op, Opcode::Shl | Opcode::LShr | Opcode::AShr) {
                    b.and(y, ValueRef::const_int(i32t, 7))
                } else {
                    y
                };
                let v = b.push(siro::ir::Instruction::new(op, i32t, vec![x, y]));
                values.push(v);
            }
            Step::SlotRoundTrip(i) => {
                let slot = b.alloca(i32t);
                b.store(pick(&values, *i), slot);
                let v = b.load(i32t, slot);
                values.push(v);
            }
            Step::Narrow(i) => {
                let t = b.trunc(pick(&values, *i), i8t);
                let v = b.sext(t, i32t);
                values.push(v);
            }
            Step::Diamond(a, bidx, x, y) => {
                let c = b.icmp(IntPredicate::Slt, pick(&values, *a), pick(&values, *bidx));
                let then_b = b.add_block("then");
                let else_b = b.add_block("else");
                let merge = b.add_block("merge");
                b.cond_br(c, then_b, else_b);
                b.position_at_end(then_b);
                b.br(merge);
                b.position_at_end(else_b);
                b.br(merge);
                b.position_at_end(merge);
                let v = b.phi(
                    i32t,
                    vec![(pick(&values, *x), then_b), (pick(&values, *y), else_b)],
                );
                values.push(v);
            }
        }
    }
    let ret = *values.last().unwrap();
    b.ret(Some(ret));
    m
}

/// Runs `body` on `cases` random step lists derived from `seed`, labelling
/// failures with the per-case sub-seed.
fn for_each_case(seed: u64, cases: usize, max_len: usize, body: impl Fn(&[Step])) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let case_seed = rng.next_u64();
        let mut case_rng = StdRng::seed_from_u64(case_seed);
        let steps = random_steps(&mut case_rng, max_len);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&steps)));
        if let Err(panic) = result {
            eprintln!("property failed at case {case} (sub-seed {case_seed:#x}): {steps:?}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Random programs verify and run deterministically.
#[test]
fn random_programs_verify_and_run() {
    for_each_case(0x51_50_01, 64, 25, |steps| {
        let m = build_program(steps, IrVersion::V13_0);
        verify::verify_module(&m).unwrap();
        let a = Machine::new(&m).run_main().unwrap().return_int();
        let b = Machine::new(&m).run_main().unwrap().return_int();
        assert!(a.is_some());
        assert_eq!(a, b);
    });
}

/// Downgrade translation preserves execution on random programs.
#[test]
fn translation_preserves_execution() {
    for_each_case(0x51_50_02, 64, 25, |steps| {
        let m = build_program(steps, IrVersion::V13_0);
        let before = Machine::new(&m).run_main().unwrap().return_int();
        for tgt in [
            IrVersion::V3_0,
            IrVersion::V3_6,
            IrVersion::V5_0,
            IrVersion::V15_0,
        ] {
            let t = Skeleton::new(tgt)
                .translate_module(&m, &ReferenceTranslator)
                .unwrap();
            verify::verify_module(&t).unwrap();
            let after = Machine::new(&t).run_main().unwrap().return_int();
            assert_eq!(before, after, "target {tgt}");
        }
    });
}

/// The same source steps built at different versions behave identically
/// (the builder itself is version-agnostic for common instructions).
#[test]
fn builder_is_version_agnostic() {
    for_each_case(0x51_50_03, 64, 20, |steps| {
        let a = build_program(steps, IrVersion::V3_0);
        let b = build_program(steps, IrVersion::V17_0);
        let ra = Machine::new(&a).run_main().unwrap().return_int();
        let rb = Machine::new(&b).run_main().unwrap().return_int();
        assert_eq!(ra, rb);
    });
}

/// Writer/parser round trip: textually idempotent and behaviourally
/// stable, in every serialization dialect.
#[test]
fn serialization_roundtrips() {
    for_each_case(0x51_50_04, 64, 20, |steps| {
        for version in [IrVersion::V3_6, IrVersion::V13_0, IrVersion::V15_0] {
            let m = build_program(steps, version);
            let expect = Machine::new(&m).run_main().unwrap().return_int();
            let t1 = siro::ir::write::write_module(&m);
            let parsed = siro::ir::parse::parse_module(&t1).unwrap();
            let t2 = siro::ir::write::write_module(&parsed);
            assert_eq!(&t1, &t2, "idempotence at {version}");
            let got = Machine::new(&parsed).run_main().unwrap().return_int();
            assert_eq!(expect, got, "behaviour at {version}");
        }
    });
}

/// Translating a random program twice (13.0 -> 3.6 -> 3.0) is still
/// behaviour-preserving.
#[test]
fn chained_translation_preserves_execution() {
    for_each_case(0x51_50_05, 64, 15, |steps| {
        let m = build_program(steps, IrVersion::V13_0);
        let before = Machine::new(&m).run_main().unwrap().return_int();
        let hop1 = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        let hop2 = Skeleton::new(IrVersion::V3_0)
            .translate_module(&hop1, &ReferenceTranslator)
            .unwrap();
        let after = Machine::new(&hop2).run_main().unwrap().return_int();
        assert_eq!(before, after);
    });
}
