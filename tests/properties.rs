//! Property-based tests over randomly generated programs: translation is
//! behaviour-preserving, serialization round-trips, and the verifier
//! accepts every translator output.

use proptest::prelude::*;

use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::{
    interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion, Module, Opcode, ValueRef,
};

/// One step of a random straight-line/diamond program.
#[derive(Debug, Clone)]
enum Step {
    /// Binary arithmetic on two earlier values.
    Bin(u8, usize, usize),
    /// Integer constant.
    Const(i32),
    /// Stack round trip of an earlier value.
    SlotRoundTrip(usize),
    /// Diamond: `v = (a < b) ? x : y` via branches and a phi.
    Diamond(usize, usize, usize, usize),
    /// A cast chain: trunc to i8, sign-extend back.
    Narrow(usize),
}

const BIN_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..9, 0usize..64, 0usize..64).prop_map(|(o, a, b)| Step::Bin(o, a, b)),
        (-1000i32..1000).prop_map(Step::Const),
        (0usize..64).prop_map(Step::SlotRoundTrip),
        (0usize..64, 0usize..64, 0usize..64, 0usize..64)
            .prop_map(|(a, b, x, y)| Step::Diamond(a, b, x, y)),
        (0usize..64).prop_map(Step::Narrow),
    ]
}

/// Builds a runnable module from a step list, in the given version.
fn build_program(steps: &[Step], version: IrVersion) -> Module {
    let mut m = Module::new("prop", version);
    let i32t = m.types.i32();
    let i8t = m.types.i8();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let mut values: Vec<ValueRef> = vec![
        ValueRef::const_int(i32t, 1),
        ValueRef::const_int(i32t, 7),
        ValueRef::const_int(i32t, -3),
    ];
    let pick = |values: &[ValueRef], i: usize| values[i % values.len()];
    for step in steps {
        match step {
            Step::Const(c) => values.push(ValueRef::const_int(i32t, i64::from(*c))),
            Step::Bin(op, a, bidx) => {
                let (x, y) = (pick(&values, *a), pick(&values, *bidx));
                let op = BIN_OPS[*op as usize % BIN_OPS.len()];
                // Mask shift amounts to keep semantics portable.
                let y = if matches!(op, Opcode::Shl | Opcode::LShr | Opcode::AShr) {
                    let masked = b.and(y, ValueRef::const_int(i32t, 7));
                    masked
                } else {
                    y
                };
                let v = b.push(siro::ir::Instruction::new(op, i32t, vec![x, y]));
                values.push(v);
            }
            Step::SlotRoundTrip(i) => {
                let slot = b.alloca(i32t);
                b.store(pick(&values, *i), slot);
                let v = b.load(i32t, slot);
                values.push(v);
            }
            Step::Narrow(i) => {
                let t = b.trunc(pick(&values, *i), i8t);
                let v = b.sext(t, i32t);
                values.push(v);
            }
            Step::Diamond(a, bidx, x, y) => {
                let c = b.icmp(IntPredicate::Slt, pick(&values, *a), pick(&values, *bidx));
                let then_b = b.add_block("then");
                let else_b = b.add_block("else");
                let merge = b.add_block("merge");
                b.cond_br(c, then_b, else_b);
                b.position_at_end(then_b);
                b.br(merge);
                b.position_at_end(else_b);
                b.br(merge);
                b.position_at_end(merge);
                let v = b.phi(
                    i32t,
                    vec![(pick(&values, *x), then_b), (pick(&values, *y), else_b)],
                );
                values.push(v);
            }
        }
    }
    let ret = *values.last().unwrap();
    b.ret(Some(ret));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random programs verify and run deterministically.
    #[test]
    fn random_programs_verify_and_run(steps in prop::collection::vec(step_strategy(), 1..25)) {
        let m = build_program(&steps, IrVersion::V13_0);
        verify::verify_module(&m).unwrap();
        let a = Machine::new(&m).run_main().unwrap().return_int();
        let b = Machine::new(&m).run_main().unwrap().return_int();
        prop_assert!(a.is_some());
        prop_assert_eq!(a, b);
    }

    /// Downgrade translation preserves execution on random programs.
    #[test]
    fn translation_preserves_execution(steps in prop::collection::vec(step_strategy(), 1..25)) {
        let m = build_program(&steps, IrVersion::V13_0);
        let before = Machine::new(&m).run_main().unwrap().return_int();
        for tgt in [IrVersion::V3_0, IrVersion::V3_6, IrVersion::V5_0, IrVersion::V15_0] {
            let t = Skeleton::new(tgt).translate_module(&m, &ReferenceTranslator).unwrap();
            verify::verify_module(&t).unwrap();
            let after = Machine::new(&t).run_main().unwrap().return_int();
            prop_assert_eq!(before, after, "target {}", tgt);
        }
    }

    /// The same source steps built at different versions behave identically
    /// (the builder itself is version-agnostic for common instructions).
    #[test]
    fn builder_is_version_agnostic(steps in prop::collection::vec(step_strategy(), 1..20)) {
        let a = build_program(&steps, IrVersion::V3_0);
        let b = build_program(&steps, IrVersion::V17_0);
        let ra = Machine::new(&a).run_main().unwrap().return_int();
        let rb = Machine::new(&b).run_main().unwrap().return_int();
        prop_assert_eq!(ra, rb);
    }

    /// Writer/parser round trip: textually idempotent and behaviourally
    /// stable, in every serialization dialect.
    #[test]
    fn serialization_roundtrips(steps in prop::collection::vec(step_strategy(), 1..20)) {
        for version in [IrVersion::V3_6, IrVersion::V13_0, IrVersion::V15_0] {
            let m = build_program(&steps, version);
            let expect = Machine::new(&m).run_main().unwrap().return_int();
            let t1 = siro::ir::write::write_module(&m);
            let parsed = siro::ir::parse::parse_module(&t1).unwrap();
            let t2 = siro::ir::write::write_module(&parsed);
            prop_assert_eq!(&t1, &t2, "idempotence at {}", version);
            let got = Machine::new(&parsed).run_main().unwrap().return_int();
            prop_assert_eq!(expect, got, "behaviour at {}", version);
        }
    }

    /// Translating a random program twice (13.0 -> 3.6 -> 3.0) is still
    /// behaviour-preserving.
    #[test]
    fn chained_translation_preserves_execution(
        steps in prop::collection::vec(step_strategy(), 1..15)
    ) {
        let m = build_program(&steps, IrVersion::V13_0);
        let before = Machine::new(&m).run_main().unwrap().return_int();
        let hop1 = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        let hop2 = Skeleton::new(IrVersion::V3_0)
            .translate_module(&hop1, &ReferenceTranslator)
            .unwrap();
        let after = Machine::new(&hop2).run_main().unwrap().return_int();
        prop_assert_eq!(before, after);
    }
}
