//! End-to-end check that the compiled translate tier is invisible on the
//! wire: the same synthesized request served with the tier on and off
//! returns byte-identical text, and the daemon's `STATS` page shows which
//! tier did the work.
//!
//! Lives in its own integration-test binary because it toggles the
//! process-global compile switch — sharing a process with other serve
//! tests would race their translations onto the wrong tier.

use std::time::Duration;

use siro::ir::{interp::Machine, parse, write, IrVersion};
use siro::serve::{stats_value, Client, ServeConfig, TranslateMode};
use siro::synth::set_compile_enabled;

#[test]
fn compiled_tier_is_byte_invisible_on_the_wire() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let case = siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .next()
        .expect("corpus has cases for the pair");
    let text = write::write_module(&case.build(src));

    let handle = siro::serve::start(ServeConfig {
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr(), Duration::from_secs(60)).expect("connect");

    // First request with the tier on: synthesizes, lowers, serves from
    // the compiled tier (the in-place mirror driver on this corpus pair).
    set_compile_enabled(true);
    let compiled_out = client
        .translate(src, tgt, TranslateMode::Synthesized, text.clone())
        .expect("served translation (compiled tier)");
    let page = client.stats().expect("stats");
    let compiled_count = stats_value(&page, "compile_translations_compiled");
    assert!(
        compiled_count.is_some_and(|n| n >= 1),
        "expected a compiled-tier translation on the stats page, got {compiled_count:?}"
    );
    assert_eq!(stats_value(&page, "compile_enabled"), Some(1));

    // Same request with the tier forced off: the interpreter must serve
    // the exact same bytes (the translator is already cached, so only the
    // execution tier changes).
    set_compile_enabled(false);
    let interpreted_out = client
        .translate(src, tgt, TranslateMode::Synthesized, text)
        .expect("served translation (interpreter)");
    assert_eq!(
        compiled_out.text, interpreted_out.text,
        "disabling the compiled tier changed served bytes"
    );
    let page = client.stats().expect("stats");
    assert!(
        stats_value(&page, "compile_translations_interpreted").is_some_and(|n| n >= 1),
        "expected an interpreted translation after disabling the tier"
    );
    assert_eq!(stats_value(&page, "compile_enabled"), Some(0));

    // The served text is live: it reparses and meets the corpus oracle.
    let reparsed = parse::parse_module(&compiled_out.text).expect("reparse served text");
    let got = Machine::new(&reparsed)
        .run_main()
        .expect("run served module")
        .return_int();
    assert_eq!(got, Some(case.oracle));

    set_compile_enabled(true);
    handle.shutdown();
}
