//! Cross-crate IR conformance suite — the behavioral contract of `siro-ir`.
//!
//! Every externally observable behavior of the IR layer is pinned here
//! against committed golden files: the exact serialized text of a corpus of
//! modules at **every** version in [`IrVersion::CATALOG`], the verifier
//! verdict for each (including error messages), the reader's verdict on the
//! writer's output, the interpreter outcome (result, step count, event
//! stream, leak accounting), and the byte-exact output of synthesized
//! translation for representative version pairs.
//!
//! The suite exists so that representation changes inside `siro-ir` (such
//! as the arena/`Ptr<T>` core) can be proven to be *no-behavior-change*
//! refactors: the goldens were generated from the pre-arena tree and must
//! keep passing bit-for-bit afterwards.
//!
//! The suite is dialect-generic: a parallel WIR section pins the same
//! contract (text, verify verdict, reparse fixpoint, interpreter outcome)
//! for every version in [`WirVersion::CATALOG`] — the `wir_conformance`
//! CI lane runs exactly these `wir_*` tests.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! SIRO_REGEN_GOLDEN=1 cargo test --test ir_conformance
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use siro::core::Skeleton;
use siro::ir::{interp, parse, verify, write, IrVersion, Module, Opcode};
use siro::synth::{OracleTest, SynthesisConfig, SynthesisOutcome, TranslatorCache};
use siro::wir::{self, WKind, WirModule, WirVersion};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ir_conformance")
}

fn version_slug(v: IrVersion) -> String {
    format!("v{}_{}", v.major(), v.minor())
}

/// Deterministic corpus for one version: every hand-written test case (the
/// 68-case corpus covers the full opcode catalog, including the EH family,
/// `callbr`, `freeze`, atomics, vectors, and inline asm) plus a batch of
/// seeded generator programs for shape diversity.
fn corpus(version: IrVersion) -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for case in siro::testcases::full_corpus() {
        out.push((format!("case:{}", case.name), case.build(version)));
    }
    let seed = 0x51D0_C0DE ^ (u64::from(version.major()) << 8) ^ u64::from(version.minor());
    for case in siro::testcases::gen::generate_cases(seed, 6, version) {
        out.push((format!("gen:{}", case.name), case.module));
    }
    out
}

/// Renders every observable fact about `module` into a deterministic dump
/// section: serialized text, verify verdict, reparse verdict, and (when the
/// module verifies) the interpreter outcome.
fn dump_module(name: &str, module: &Module) -> String {
    let mut s = String::new();
    let text = write::write_module(module);
    writeln!(s, "== {name} ==").unwrap();
    writeln!(s, "-- text ({} bytes) --", text.len()).unwrap();
    s.push_str(&text);
    if !text.ends_with('\n') {
        s.push('\n');
    }
    let verdict = verify::verify_module(module);
    match &verdict {
        Ok(()) => writeln!(s, "-- verify: ok --").unwrap(),
        Err(e) => writeln!(s, "-- verify: error: {e} --").unwrap(),
    }
    match parse::parse_module(&text) {
        Ok(reparsed) => {
            let retext = write::write_module(&reparsed);
            if retext == text {
                writeln!(s, "-- reparse: ok (fixpoint) --").unwrap();
            } else {
                writeln!(s, "-- reparse: ok (NOT a fixpoint) --").unwrap();
            }
        }
        Err(e) => writeln!(s, "-- reparse: error: {e} --").unwrap(),
    }
    if verdict.is_ok() {
        match interp::Machine::new(module).with_fuel(200_000).run_main() {
            Ok(outcome) => {
                writeln!(s, "-- interp --").unwrap();
                writeln!(s, "result: {:?}", outcome.result).unwrap();
                writeln!(s, "steps: {}", outcome.steps).unwrap();
                writeln!(s, "events: {:?}", outcome.events).unwrap();
                writeln!(s, "leaked_heap: {}", outcome.leaked_heap).unwrap();
            }
            Err(e) => writeln!(s, "-- interp: error: {e} --").unwrap(),
        }
    } else {
        writeln!(s, "-- interp: skipped (verify failed) --").unwrap();
    }
    s.push('\n');
    s
}

fn dump_version(version: IrVersion) -> String {
    let mut s = format!("# siro-ir conformance dump, version {version}\n\n");
    for (name, module) in corpus(version) {
        s.push_str(&dump_module(&name, &module));
    }
    s
}

fn check_or_regen(file: &str, rendered: &str) {
    let path = golden_dir().join(file);
    if std::env::var_os("SIRO_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}; regenerate with SIRO_REGEN_GOLDEN=1",
            path.display()
        )
    });
    if rendered != golden {
        // Locate the first differing line for a readable failure.
        for (line, (a, b)) in (1usize..).zip(rendered.lines().zip(golden.lines())) {
            if a != b {
                panic!(
                    "{file} drifted from the committed golden at line {line}:\n  \
                     got:    {a}\n  golden: {b}\n\
                     The IR layer's observable behavior changed; if intentional, \
                     regenerate with SIRO_REGEN_GOLDEN=1",
                );
            }
        }
        panic!(
            "{file} drifted from the committed golden (length {} vs {}); \
             regenerate with SIRO_REGEN_GOLDEN=1 if intentional",
            rendered.len(),
            golden.len()
        );
    }
}

/// The headline conformance check: for every version in the catalog the
/// full corpus dump (text, verify verdict, reparse verdict, interpreter
/// outcome) must be byte-identical to the committed golden.
#[test]
fn golden_corpus_is_byte_identical_for_every_version() {
    for version in IrVersion::CATALOG {
        let rendered = dump_version(version);
        check_or_regen(&format!("{}.txt", version_slug(version)), &rendered);
    }
}

/// Writer output must be a parser fixpoint wherever the parser accepts it:
/// `write(parse(write(m))) == write(m)`, and the reparsed module must agree
/// with the original on the verifier verdict and interpreter outcome.
#[test]
fn write_parse_write_is_a_fixpoint_and_preserves_behavior() {
    for version in IrVersion::CATALOG {
        for (name, module) in corpus(version) {
            let text = write::write_module(&module);
            let reparsed = match parse::parse_module(&text) {
                Ok(m) => m,
                Err(_) => continue, // verdict itself is pinned by the golden dump
            };
            let retext = write::write_module(&reparsed);
            assert_eq!(retext, text, "{version} {name}: not a print fixpoint");
            let v1 = verify::verify_module(&module).map_err(|e| e.to_string());
            let v2 = verify::verify_module(&reparsed).map_err(|e| e.to_string());
            assert_eq!(v1, v2, "{version} {name}: verify verdict changed");
            if v1.is_ok() {
                let o1 = interp::Machine::new(&module).with_fuel(200_000).run_main();
                let o2 = interp::Machine::new(&reparsed)
                    .with_fuel(200_000)
                    .run_main();
                match (o1, o2) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.result, b.result, "{version} {name}: result");
                        assert_eq!(a.steps, b.steps, "{version} {name}: steps");
                        assert_eq!(a.events, b.events, "{version} {name}: events");
                    }
                    (a, b) => assert_eq!(
                        a.is_ok(),
                        b.is_ok(),
                        "{version} {name}: interp error class changed"
                    ),
                }
            }
        }
    }
}

/// The conformance corpus must exercise the complete opcode catalog at the
/// newest version — otherwise "proven behavior-identical" would silently
/// exclude the long tail.
#[test]
fn corpus_covers_every_opcode_kind() {
    let version = IrVersion::V17_0;
    let mut seen: BTreeSet<Opcode> = BTreeSet::new();
    for (_, module) in corpus(version) {
        for f in &module.funcs {
            for inst in &f.insts {
                seen.insert(inst.opcode);
            }
        }
    }
    let missing: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|o| !seen.contains(o))
        .collect();
    assert!(
        missing.is_empty(),
        "conformance corpus misses opcode kinds: {missing:?}"
    );
}

// ---------------------------------------------------------------------------
// WIR: the second dialect's conformance section
// ---------------------------------------------------------------------------

fn wir_version_slug(v: WirVersion) -> String {
    format!("wir{}_{}", v.major(), v.minor())
}

/// Deterministic WIR corpus for one version: seeded full-feature generator
/// modules (blocks, loops, branches, calls — everything the version's
/// instruction set gates in) plus straight-line modules from the
/// bridge-facing generator.
fn wir_corpus(version: WirVersion) -> Vec<(String, WirModule)> {
    use siro::wir::{WBin, WTy, WirFunc, WirInst};

    let mut out = Vec::new();

    // Hand-written cases covering the corners the generator avoids:
    // cross-function calls, unconditional branches, nop, and the two
    // division trap kinds (the semantics the cross-dialect bridge hinges
    // on — pinned here per version so a drift is caught at the dialect
    // layer, not just in the bridge tests).
    let mut m = WirModule::new("call_helper", version);
    let mut h = WirFunc::new("add2", vec![WTy::I32, WTy::I32], Some(WTy::I32));
    h.body.alloc(WirInst::LocalGet(0));
    h.body.alloc(WirInst::LocalGet(1));
    h.body.alloc(WirInst::Binop(WTy::I32, WBin::Add));
    h.body.alloc(WirInst::Return);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, 40));
    f.body.alloc(WirInst::Const(WTy::I32, 2));
    f.body.alloc(WirInst::Call(0));
    f.body.alloc(WirInst::Return);
    m.funcs.push(h);
    m.funcs.push(f);
    out.push(("case:call-helper".to_string(), m));

    let mut m = WirModule::new("br_skip_nop", version);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    let l = f.alloc_local(WTy::I32);
    f.body.alloc(WirInst::Block);
    f.body.alloc(WirInst::Br(0));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::Nop);
    f.body.alloc(WirInst::LocalGet(l));
    f.body.alloc(WirInst::Return);
    m.funcs.push(f);
    out.push(("case:br-skip-nop".to_string(), m));

    for (name, divisor) in [("div-by-zero", 0i64), ("sdiv-overflow", -1i64)] {
        let mut m = WirModule::new(name.replace('-', "_"), version);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        f.body.alloc(WirInst::Const(WTy::I32, i64::from(i32::MIN)));
        f.body.alloc(WirInst::Const(WTy::I32, divisor));
        f.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
        f.body.alloc(WirInst::Return);
        m.funcs.push(f);
        out.push((format!("case:{name}"), m));
    }

    let seed = 0x51D0_C0DE ^ (u64::from(version.major()) << 8) ^ u64::from(version.minor());
    for i in 0..8u64 {
        out.push((
            format!("gen:full-{i}"),
            wir::generate_module(seed ^ (i << 16), version),
        ));
    }
    for i in 0..4u64 {
        out.push((
            format!("gen:straightline-{i}"),
            wir::generate_straightline(seed ^ (i << 24), version),
        ));
    }
    out
}

/// The WIR analogue of [`dump_module`]: text, verify verdict, reparse
/// verdict, and interpreter outcome (result + step count).
fn dump_wir_module(name: &str, module: &WirModule) -> String {
    let mut s = String::new();
    let text = wir::write_module(module);
    writeln!(s, "== {name} ==").unwrap();
    writeln!(s, "-- text ({} bytes) --", text.len()).unwrap();
    s.push_str(&text);
    if !text.ends_with('\n') {
        s.push('\n');
    }
    let verdict = wir::verify_module(module);
    match &verdict {
        Ok(()) => writeln!(s, "-- verify: ok --").unwrap(),
        Err(e) => writeln!(s, "-- verify: error: {e} --").unwrap(),
    }
    match wir::parse_module(&text) {
        Ok(reparsed) => {
            if wir::write_module(&reparsed) == text {
                writeln!(s, "-- reparse: ok (fixpoint) --").unwrap();
            } else {
                writeln!(s, "-- reparse: ok (NOT a fixpoint) --").unwrap();
            }
        }
        Err(e) => writeln!(s, "-- reparse: error: {e} --").unwrap(),
    }
    if verdict.is_ok() {
        let outcome = wir::WirMachine::new(module)
            .with_fuel(wir::DEFAULT_FUEL)
            .run_main();
        writeln!(s, "-- interp --").unwrap();
        writeln!(s, "result: {:?}", outcome.result).unwrap();
        writeln!(s, "steps: {}", outcome.steps).unwrap();
    } else {
        writeln!(s, "-- interp: skipped (verify failed) --").unwrap();
    }
    s.push('\n');
    s
}

fn dump_wir_version(version: WirVersion) -> String {
    let mut s = format!("# siro-wir conformance dump, version {version}\n\n");
    for (name, module) in wir_corpus(version) {
        s.push_str(&dump_wir_module(&name, &module));
    }
    s
}

/// The WIR headline check: for every version in the WIR catalog the full
/// corpus dump (text, verify verdict, reparse verdict, interpreter
/// outcome) must be byte-identical to the committed golden.
#[test]
fn wir_golden_corpus_is_byte_identical_for_every_version() {
    for version in WirVersion::CATALOG {
        let rendered = dump_wir_version(version);
        check_or_regen(&format!("{}.txt", wir_version_slug(version)), &rendered);
    }
}

/// WIR writer output must be a parser fixpoint, and the reparsed module
/// must agree on the verifier verdict and interpreter outcome.
#[test]
fn wir_write_parse_write_is_a_fixpoint_and_preserves_behavior() {
    for version in WirVersion::CATALOG {
        for (name, module) in wir_corpus(version) {
            let text = wir::write_module(&module);
            let reparsed = wir::parse_module(&text)
                .unwrap_or_else(|e| panic!("wir{version} {name}: reparse failed: {e}"));
            assert_eq!(
                wir::write_module(&reparsed),
                text,
                "wir{version} {name}: not a print fixpoint"
            );
            let v1 = wir::verify_module(&module).map_err(|e| e.to_string());
            let v2 = wir::verify_module(&reparsed).map_err(|e| e.to_string());
            assert_eq!(v1, v2, "wir{version} {name}: verify verdict changed");
            if v1.is_ok() {
                let o1 = wir::WirMachine::new(&module).run_main();
                let o2 = wir::WirMachine::new(&reparsed).run_main();
                assert_eq!(o1.result, o2.result, "wir{version} {name}: result");
                assert_eq!(o1.steps, o2.steps, "wir{version} {name}: steps");
            }
        }
    }
}

/// The WIR corpus must exercise the complete instruction catalog at the
/// newest version, mirroring [`corpus_covers_every_opcode_kind`].
#[test]
fn wir_corpus_covers_every_instruction_kind() {
    let mut seen: BTreeSet<WKind> = BTreeSet::new();
    for (_, module) in wir_corpus(WirVersion::W3_0) {
        for f in &module.funcs {
            for inst in f.body.iter() {
                seen.insert(inst.kind());
            }
        }
    }
    let missing: Vec<WKind> = WKind::ALL
        .iter()
        .copied()
        .filter(|k| !seen.contains(k))
        .collect();
    assert!(
        missing.is_empty(),
        "WIR conformance corpus misses instruction kinds: {missing:?}"
    );
}

fn oracle_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro::testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

fn synth(src: IrVersion, tgt: IrVersion) -> Arc<SynthesisOutcome> {
    TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &oracle_tests(src, tgt))
        .expect("synthesis")
}

/// The serve path end to end: for representative pairs, the serialized
/// bytes of every translated corpus module are pinned. This is the exact
/// parse→translate→serialize composition the daemon runs per request.
#[test]
fn translated_bytes_match_golden_for_representative_pairs() {
    let pairs = [
        (IrVersion::V13_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V12_0),
        (IrVersion::V3_6, IrVersion::V12_0),
    ];
    for (src, tgt) in pairs {
        let outcome = synth(src, tgt);
        let skel = Skeleton::new(tgt);
        let mut s = format!("# translation conformance dump, pair {src} -> {tgt}\n\n");
        for case in siro::testcases::corpus_for_pair(src, tgt) {
            let m = case.build(src);
            let translated = skel
                .translate_module(&m, &outcome.translator)
                .unwrap_or_else(|e| panic!("{src}->{tgt} {}: {e}", case.name));
            let text = write::write_module(&translated);
            writeln!(s, "== case:{} ({} bytes) ==", case.name, text.len()).unwrap();
            s.push_str(&text);
            if !text.ends_with('\n') {
                s.push('\n');
            }
            s.push('\n');
        }
        check_or_regen(
            &format!(
                "translate_{}_to_{}.txt",
                version_slug(src),
                version_slug(tgt)
            ),
            &s,
        );
    }
}
