//! Chain metamorphic properties of translation, on the hand-written
//! corpus: for a version triple `(A, B, C)`,
//!
//! * **chain**:     `A→B→C ≡ A→C` — translating through an intermediate
//!   version reaches the same behaviour as translating directly;
//! * **roundtrip**: `A→B→A ≡ id` — translating out and back preserves
//!   behaviour.
//!
//! The reference translator carries every leg here (the synthesized
//! pipeline is exercised the same way by `siro-difftest`'s oracles; one
//! synthesized triple is spot-checked at the end via the shared
//! translator cache).

use siro::core::{ReferenceTranslator, Skeleton};
use siro::ir::{interp::Machine, verify, IrVersion, Module};

/// Three representative triples: a downgrade across the typed-pointer
/// era, an upgrade chain among modern versions, and an old-to-new climb.
const TRIPLES: [(IrVersion, IrVersion, IrVersion); 3] = [
    (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6),
    (IrVersion::V17_0, IrVersion::V14_0, IrVersion::V12_0),
    (IrVersion::V3_6, IrVersion::V5_0, IrVersion::V13_0),
];

fn reference_leg(m: &Module, to: IrVersion) -> Module {
    let out = Skeleton::new(to)
        .translate_module(m, &ReferenceTranslator)
        .unwrap_or_else(|e| panic!("reference {} -> {to}: {e}", m.version));
    verify::verify_module(&out).unwrap();
    out
}

fn result_of(m: &Module) -> Option<i64> {
    Machine::new(m)
        .with_fuel(200_000)
        .run_main()
        .expect("harness error")
        .return_int()
}

/// Corpus cases usable on *every* leg of the triple.
fn cases_for(a: IrVersion, b: IrVersion, c: IrVersion) -> Vec<siro::testcases::TestCase> {
    siro::testcases::corpus_for_pair(a, c)
        .into_iter()
        .filter(|t| t.usable_for_pair(a, b) && t.usable_for_pair(b, c))
        .collect()
}

#[test]
fn chain_equals_direct_on_reference_legs() {
    for (a, b, c) in TRIPLES {
        let cases = cases_for(a, b, c);
        assert!(cases.len() >= 10, "thin corpus for {a}/{b}/{c}");
        for case in cases {
            let m = case.build(a);
            let direct = reference_leg(&m, c);
            let chained = reference_leg(&reference_leg(&m, b), c);
            assert_eq!(
                result_of(&direct),
                result_of(&chained),
                "{}: {a}->{c} vs {a}->{b}->{c} disagree",
                case.name
            );
            assert_eq!(
                result_of(&direct),
                Some(case.oracle),
                "{}: direct translation broke the oracle",
                case.name
            );
        }
    }
}

#[test]
fn roundtrip_preserves_behaviour_on_reference_legs() {
    for (a, b, _) in TRIPLES {
        for case in cases_for(a, b, a) {
            let m = case.build(a);
            let home = reference_leg(&reference_leg(&m, b), a);
            assert_eq!(home.version, a);
            assert_eq!(
                result_of(&m),
                result_of(&home),
                "{}: {a}->{b}->{a} changed behaviour",
                case.name
            );
        }
    }
}

#[test]
fn chain_equals_direct_on_synthesized_legs() {
    // One triple end-to-end through the synthesized pipeline (the
    // process-wide translator cache makes the three legs affordable).
    let (a, b, c) = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
    let chain = siro::difftest::oracle::ChainSet::synthesize(a, b, c, None).unwrap();
    let mut compared = 0;
    for case in cases_for(a, b, c) {
        let m = case.build(a);
        match chain.check(&m, siro::difftest::ORACLE_FUEL) {
            siro::difftest::Verdict::Fail(f) => panic!(
                "{}: synthesized {}/{} oracle failure: {}",
                case.name,
                f.oracle,
                f.family.name(),
                f.detail
            ),
            siro::difftest::Verdict::Agree => compared += 1,
            siro::difftest::Verdict::Skip(_) => {}
        }
    }
    assert!(
        compared >= 10,
        "only {compared} corpus cases were comparable"
    );
}
